/**
 * @file
 * Tests for the reverse engineering stages: timing oracle (Fig. 4),
 * eviction set finder (Algorithm 1), validator (Fig. 5), aliasing
 * (Fig. 6) and the Table I reverse engineer. Results are checked
 * against the simulator's ground-truth oracles (the indexer), which
 * the attack code itself never consults.
 */

#include <gtest/gtest.h>

#include <set>

#include "attack/evset_finder.hh"
#include "attack/evset_validator.hh"
#include "attack/reverse_engineer.hh"
#include "attack/timing_oracle.hh"
#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"

namespace gpubox::attack
{
namespace
{

using test::smallConfig;

/** Shared expensive fixture: calibrated box + finished local finder. */
class ReFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogEnabled(false);
        rt_ = new rt::Runtime(smallConfig(1234));
        proc_ = &rt_->createProcess("attacker");
        TimingOracle oracle(*rt_, *proc_);
        calib_ = new CalibrationResult(oracle.calibrate(0, 1, 32, 6));
        finder_ = new EvictionSetFinder(*rt_, *proc_, 0, 0,
                                        calib_->thresholds);
        finder_->run();
        setLogEnabled(true);
    }

    static void
    TearDownTestSuite()
    {
        delete finder_;
        delete calib_;
        delete rt_;
        rt_ = nullptr;
        proc_ = nullptr;
        calib_ = nullptr;
        finder_ = nullptr;
    }

    void
    SetUp() override
    {
        ASSERT_NE(rt_, nullptr) << "fixture setup failed earlier";
    }

    static rt::Runtime *rt_;
    static rt::Process *proc_;
    static CalibrationResult *calib_;
    static EvictionSetFinder *finder_;
};

rt::Runtime *ReFixture::rt_ = nullptr;
rt::Process *ReFixture::proc_ = nullptr;
CalibrationResult *ReFixture::calib_ = nullptr;
EvictionSetFinder *ReFixture::finder_ = nullptr;

TEST_F(ReFixture, OracleFindsFourOrderedClusters)
{
    const auto &c = calib_->clusters.centers;
    ASSERT_EQ(c.size(), 4u);
    EXPECT_LT(c[0], c[1]);
    EXPECT_LT(c[1], c[2]);
    EXPECT_LT(c[2], c[3]);
    // Near the configured latencies (plus clock overhead).
    EXPECT_NEAR(c[0], 278, 25);
    EXPECT_NEAR(c[1], 458, 25);
    EXPECT_NEAR(c[2], 638, 35);
    EXPECT_NEAR(c[3], 958, 35);
}

TEST_F(ReFixture, OracleThresholdsClassifyCorrectly)
{
    const TimingThresholds &th = calib_->thresholds;
    for (double t : calib_->localHitSamples)
        EXPECT_FALSE(th.isLocalMiss(t));
    for (double t : calib_->localMissSamples)
        EXPECT_TRUE(th.isLocalMiss(t));
    for (double t : calib_->remoteHitSamples)
        EXPECT_FALSE(th.isRemoteMiss(t));
    for (double t : calib_->remoteMissSamples)
        EXPECT_TRUE(th.isRemoteMiss(t));
}

TEST_F(ReFixture, OracleRequiresNvlinkPeers)
{
    rt::SystemConfig cfg = smallConfig();
    cfg.topology = noc::Topology::ring(4);
    rt::Runtime rt(cfg);
    rt::Process &p = rt.createProcess("a");
    TimingOracle oracle(rt, p);
    EXPECT_THROW(oracle.calibrate(0, 2, 8, 1), FatalError);
}

TEST_F(ReFixture, FinderDiscoversAssociativity)
{
    EXPECT_EQ(finder_->associativity(),
              rt_->config().device.l2.ways);
}

TEST_F(ReFixture, FinderGroupsMatchTrueColors)
{
    // Every discovered group must be color-pure and the groups must
    // partition the pool.
    const auto &codec = rt_->codec();
    const auto *indexer = dynamic_cast<const cache::HashedPageIndexer *>(
        &rt_->l2Indexer());
    ASSERT_NE(indexer, nullptr);

    std::set<int> grouped;
    for (const auto &group : finder_->groups()) {
        ASSERT_GE(group.size(), finder_->associativity());
        std::set<std::uint32_t> colors;
        for (int page : group) {
            EXPECT_TRUE(grouped.insert(page).second)
                << "page in two groups";
            const PAddr p =
                proc_->space().translate(finder_->lineAddr(page, 0));
            colors.insert(indexer->colorOf(codec.frameOf(p),
                                           codec.gpuOf(p)));
        }
        EXPECT_EQ(colors.size(), 1u) << "group mixes page colors";
    }
}

TEST_F(ReFixture, FinderGroupsAreComplete)
{
    // Every pool page whose color has >= associativity members must be
    // grouped with ALL pool pages of its color.
    const auto &codec = rt_->codec();
    const auto *indexer = dynamic_cast<const cache::HashedPageIndexer *>(
        &rt_->l2Indexer());
    std::map<std::uint32_t, int> color_pop;
    const int pool = 160;
    for (int page = 0; page < pool; ++page) {
        const PAddr p =
            proc_->space().translate(finder_->lineAddr(page, 0));
        ++color_pop[indexer->colorOf(codec.frameOf(p), codec.gpuOf(p))];
    }
    std::size_t expected_grouped = 0;
    for (auto [color, pop] : color_pop) {
        (void)color;
        if (pop > static_cast<int>(finder_->associativity()))
            expected_grouped += pop;
    }
    std::size_t grouped = 0;
    for (const auto &g : finder_->groups())
        grouped += g.size();
    EXPECT_EQ(grouped, expected_grouped);
}

TEST_F(ReFixture, EvictionSetsMapToSamePhysicalSet)
{
    for (std::size_t g = 0; g < finder_->numGroups(); ++g) {
        for (std::uint32_t offset : {0u, 7u, 31u}) {
            const EvictionSet set = finder_->evictionSet(g, offset);
            ASSERT_EQ(set.lines.size(), finder_->associativity());
            std::set<SetIndex> sets;
            for (VAddr v : set.lines)
                sets.insert(rt_->l2SetOf(*proc_, v));
            EXPECT_EQ(sets.size(), 1u);
        }
    }
}

TEST_F(ReFixture, CoveringSetsHitDistinctPhysicalSets)
{
    const auto sets = finder_->coveringSets();
    std::set<SetIndex> phys;
    for (const auto &s : sets)
        phys.insert(rt_->l2SetOf(*proc_, s.lines[0]));
    // Groups x linesPerPage distinct physical sets (128 in the small
    // config = full coverage).
    EXPECT_EQ(phys.size(), sets.size());
    EXPECT_EQ(phys.size(), rt_->config().device.l2.numSets());
}

TEST_F(ReFixture, ValidatorSweepStepsAtAssociativity)
{
    const unsigned assoc = finder_->associativity();
    EvictionSet set = finder_->evictionSet(0, 3, assoc + 9);
    EvictionSetValidator validator(*rt_, *proc_, 0, 0,
                                   calib_->thresholds);
    ValidationSeries series = validator.sweep(set, assoc + 8);
    for (std::size_t i = 0; i < series.linesAccessed.size(); ++i) {
        const bool expect_miss = series.linesAccessed[i] >= assoc;
        EXPECT_EQ(series.probeMissed[i], expect_miss)
            << "n=" << series.linesAccessed[i];
    }
}

TEST_F(ReFixture, ValidatorCyclicTraceShowsLruDeterminism)
{
    const unsigned assoc = finder_->associativity();
    EvictionSet set = finder_->evictionSet(0, 5, assoc + 1);
    EvictionSetValidator validator(*rt_, *proc_, 0, 0,
                                   calib_->thresholds);

    // k == assoc: after the first pass, everything hits.
    auto trace_fit = validator.cyclicTrace(set, assoc, assoc * 4);
    for (std::size_t i = assoc; i < trace_fit.size(); ++i)
        EXPECT_FALSE(calib_->thresholds.isLocalMiss(trace_fit[i]))
            << "i=" << i;

    // k == assoc + 1: LRU thrashes; everything misses.
    auto trace_thrash = validator.cyclicTrace(set, assoc + 1,
                                              (assoc + 1) * 4);
    for (std::size_t i = assoc + 1; i < trace_thrash.size(); ++i)
        EXPECT_TRUE(calib_->thresholds.isLocalMiss(trace_thrash[i]))
            << "i=" << i;
}

TEST_F(ReFixture, AliasTestDetectsSameSet)
{
    // Two eviction sets for the same (group, offset) but different
    // pages alias; sets from different offsets do not.
    const unsigned assoc = finder_->associativity();
    const auto &group = finder_->groups()[0];
    ASSERT_GE(group.size(), assoc + 1);

    EvictionSet a = finder_->evictionSet(0, 2, assoc);
    // Same physical set, shifted page selection.
    EvictionSet b;
    for (unsigned i = 1; i <= assoc; ++i)
        b.lines.push_back(finder_->lineAddr(group[i], 2));
    EvictionSet c = finder_->evictionSet(0, 3, assoc);

    EXPECT_TRUE(finder_->aliasTest(a, b));
    EXPECT_FALSE(finder_->aliasTest(a, c));
}

TEST_F(ReFixture, NaiveDiscoveryAliasesAcrossTargets)
{
    // Naive per-target discovery: two same-color targets yield
    // aliasing eviction sets -- the Fig. 6 hazard.
    const auto &group = finder_->groups()[0];
    ASSERT_GE(group.size(), 2u);
    EvictionSet s1 = finder_->naiveSetFor(group[0]);
    EvictionSet s2 = finder_->naiveSetFor(group[1]);
    ASSERT_EQ(s1.lines.size(), finder_->associativity());
    EXPECT_TRUE(finder_->aliasTest(s1, s2));
}

TEST_F(ReFixture, ReverseEngineerRecoversTableOne)
{
    ReverseEngineer re(*rt_, *proc_, 0, calib_->thresholds);
    setLogEnabled(false);
    CacheArchReport report = re.run(*finder_);
    setLogEnabled(true);

    const auto &l2 = rt_->config().device.l2;
    EXPECT_EQ(report.lineBytes, l2.lineBytes);
    EXPECT_EQ(report.cacheBytes, l2.sizeBytes);
    EXPECT_EQ(report.associativity, l2.ways);
    EXPECT_EQ(report.numSets, l2.numSets());
    EXPECT_EQ(report.replacementPolicy, "LRU");

    const std::string table = report.toTable();
    EXPECT_NE(table.find("Replacement Policy"), std::string::npos);
    EXPECT_NE(table.find("LRU"), std::string::npos);
}

TEST_F(ReFixture, PolicyClassifier)
{
    EXPECT_EQ(ReverseEngineer::classifyPolicy({16, 16, 16, 16}, 16),
              "LRU");
    EXPECT_EQ(ReverseEngineer::classifyPolicy({15, 15, 15, 16}, 16),
              "pseudo-LRU");
    EXPECT_EQ(ReverseEngineer::classifyPolicy({4, 9, 16, 12, 7, 14}, 16),
              "randomized");
    EXPECT_EQ(ReverseEngineer::classifyPolicy({}, 16), "unknown");
}

TEST_F(ReFixture, RemoteFinderAgreesWithLocal)
{
    // The paper: "the address placement in the cache is independent of
    // the GPU which the kernel is launched on". A finder probing the
    // same GPU-0 memory from GPU 1 must see the same geometry.
    setLogEnabled(false);
    rt::Process &spy = rt_->createProcess("remote-spy");
    EvictionSetFinder remote(*rt_, spy, 1, 0, calib_->thresholds);
    remote.run();
    setLogEnabled(true);
    EXPECT_EQ(remote.associativity(), finder_->associativity());
    EXPECT_EQ(remote.numGroups(), finder_->numGroups());
}

} // namespace
} // namespace gpubox::attack
