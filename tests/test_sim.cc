/**
 * @file
 * Unit tests for the coroutine simulation engine: scheduling order,
 * time accounting, stop flags, completion hooks.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "sim/engine.hh"
#include "sim/task.hh"
#include "util/log.hh"

namespace gpubox::sim
{
namespace
{

Task
delayLoop(ActorCtx &ctx, int steps, Cycles step, std::vector<Cycles> *log)
{
    for (int i = 0; i < steps; ++i) {
        co_await Delay{step};
        if (log)
            log->push_back(ctx.now());
    }
}

TEST(Engine, SingleActorAdvancesTime)
{
    Engine eng;
    std::vector<Cycles> log;
    eng.spawn("a", [&](ActorCtx &ctx) {
        return delayLoop(ctx, 3, 100, &log);
    });
    eng.run();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0], 100u);
    EXPECT_EQ(log[1], 200u);
    EXPECT_EQ(log[2], 300u);
    EXPECT_EQ(eng.liveActors(), 0u);
}

TEST(Engine, MinTimeInterleaving)
{
    Engine eng;
    std::vector<std::pair<char, Cycles>> events;

    auto make = [&](char id, Cycles step, int count) {
        return [&events, id, step, count](ActorCtx &ctx) -> Task {
            for (int i = 0; i < count; ++i) {
                co_await Delay{step};
                events.emplace_back(id, ctx.now());
            }
        };
    };
    eng.spawn("fast", make('f', 10, 10));
    eng.spawn("slow", make('s', 35, 3));
    eng.run();

    // Events must come out in global time order.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].second, events[i].second);
    EXPECT_EQ(events.size(), 13u);
}

TEST(Engine, TieBreakBySpawnOrder)
{
    Engine eng;
    std::vector<int> order;
    for (int k = 0; k < 4; ++k) {
        eng.spawn("a" + std::to_string(k), [&order, k](ActorCtx &) -> Task {
            order.push_back(k);
            co_return;
        });
    }
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, ChargeAddsNonSuspendingCost)
{
    Engine eng;
    Cycles observed = 0;
    eng.spawn("a", [&](ActorCtx &ctx) -> Task {
        ctx.charge(7);
        EXPECT_EQ(ctx.now(), 7u);
        co_await Delay{100};
        observed = ctx.now();
    });
    eng.run();
    EXPECT_EQ(observed, 107u);
}

TEST(Engine, RunUntilStopsAtTime)
{
    Engine eng;
    int iterations = 0;
    eng.spawn("a", [&](ActorCtx &) -> Task {
        for (int i = 0; i < 100; ++i) {
            co_await Delay{10};
            ++iterations;
        }
    });
    eng.runUntil(500);
    EXPECT_LE(iterations, 51);
    EXPECT_GE(iterations, 49);
    EXPECT_EQ(eng.liveActors(), 1u);
    eng.run();
    EXPECT_EQ(iterations, 100);
}

TEST(Engine, StopRequestIsVisible)
{
    Engine eng;
    int iterations = 0;
    ActorCtx &worker = eng.spawn("w", [&](ActorCtx &ctx) -> Task {
        while (!ctx.stopRequested()) {
            co_await Delay{10};
            ++iterations;
        }
    });
    eng.spawn("killer", [&](ActorCtx &) -> Task {
        co_await Delay{105};
        worker.requestStop();
    });
    eng.run();
    EXPECT_GE(iterations, 10);
    EXPECT_LE(iterations, 12);
}

TEST(Engine, RequestStopAll)
{
    Engine eng;
    for (int k = 0; k < 3; ++k) {
        eng.spawn("w", [](ActorCtx &ctx) -> Task {
            while (!ctx.stopRequested())
                co_await Delay{10};
        });
    }
    for (int i = 0; i < 10; ++i)
        eng.stepOne();
    eng.requestStopAll();
    eng.run();
    EXPECT_EQ(eng.liveActors(), 0u);
}

TEST(Engine, OnDoneHookFires)
{
    Engine eng;
    bool fired = false;
    ActorCtx &a = eng.spawn("a", [](ActorCtx &) -> Task { co_return; });
    a.setOnDone([&](ActorCtx &ctx) {
        fired = true;
        EXPECT_TRUE(ctx.finished());
    });
    eng.run();
    EXPECT_TRUE(fired);
}

TEST(Engine, ExceptionPropagates)
{
    Engine eng;
    eng.spawn("bad", [](ActorCtx &) -> Task {
        co_await Delay{1};
        fatal("kernel fault");
    });
    EXPECT_THROW(eng.run(), FatalError);
}

TEST(Engine, ExceptionLeavesEngineConsistent)
{
    Engine eng;
    int survivors = 0;
    eng.spawn("bad", [](ActorCtx &ctx) -> Task {
        ctx.charge(3);
        co_await Delay{5};
        fatal("kernel fault");
    });
    for (int k = 0; k < 2; ++k) {
        eng.spawn("ok", [&](ActorCtx &) -> Task {
            co_await Delay{50};
            ++survivors;
        });
    }
    EXPECT_THROW(eng.run(), FatalError);

    // The throwing actor must be fully retired: accounted as done,
    // dequeued, and invisible to deadlock diagnostics.
    EXPECT_EQ(eng.liveActors(), 2u);
    const auto names = eng.unfinishedActorNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "ok");
    EXPECT_EQ(names[1], "ok");

    // And the engine must still be able to drain the rest.
    eng.run();
    EXPECT_EQ(survivors, 2);
    EXPECT_EQ(eng.liveActors(), 0u);
    EXPECT_TRUE(eng.unfinishedActorNames().empty());
}

TEST(Engine, StartTimeOffset)
{
    Engine eng;
    Cycles first = 0;
    eng.spawn(
        "late",
        [&](ActorCtx &ctx) -> Task {
            first = ctx.now();
            co_return;
        },
        5000);
    eng.run();
    EXPECT_EQ(first, 5000u);
}

TEST(Engine, ActorRngStreamsDiffer)
{
    Engine eng;
    std::uint64_t va = 0, vb = 0;
    eng.spawn("a", [&](ActorCtx &ctx) -> Task {
        va = ctx.rng().next();
        co_return;
    });
    eng.spawn("b", [&](ActorCtx &ctx) -> Task {
        vb = ctx.rng().next();
        co_return;
    });
    eng.run();
    EXPECT_NE(va, vb);
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto run_once = [](std::uint64_t seed) {
        Engine eng(seed);
        std::vector<std::uint64_t> trace;
        for (int k = 0; k < 3; ++k) {
            eng.spawn("w", [&trace](ActorCtx &ctx) -> Task {
                for (int i = 0; i < 5; ++i) {
                    co_await Delay{ctx.rng().uniform(50) + 1};
                    trace.push_back(ctx.now() * 31 + ctx.id());
                }
            });
        }
        eng.run();
        return trace;
    };
    EXPECT_EQ(run_once(9), run_once(9));
    EXPECT_NE(run_once(9), run_once(10));
}

TEST(Engine, StepsExecutedCounts)
{
    Engine eng;
    eng.spawn("a", [](ActorCtx &) -> Task {
        co_await Delay{1};
        co_await Delay{1};
    });
    eng.run();
    // initial resume + 2 delays = 3 resumes.
    EXPECT_EQ(eng.stepsExecuted(), 3u);
}

TEST(Engine, ZeroDelayActorsMakeProgress)
{
    Engine eng;
    int count = 0;
    eng.spawn("z", [&](ActorCtx &) -> Task {
        for (int i = 0; i < 10; ++i) {
            co_await Delay{0};
            ++count;
        }
    });
    eng.run();
    EXPECT_EQ(count, 10);
}

TEST(Engine, RunUntilNeverResumesBeyondLimit)
{
    // Spawn-heavy workload: the root keeps creating children whose
    // start times straddle the runUntil() limit, including exactly at
    // it. No actor whose local clock is >= the limit may be resumed.
    constexpr Cycles limit = 500;
    Engine eng;
    std::vector<Cycles> resumed;
    auto child = [&](ActorCtx &ctx) -> Task {
        resumed.push_back(ctx.now());
        co_await Delay{40};
        resumed.push_back(ctx.now());
    };
    eng.spawn("root", [&](ActorCtx &ctx) -> Task {
        for (int i = 0; i < 20; ++i) {
            resumed.push_back(ctx.now());
            eng.spawn("early", child, ctx.now() + 1);
            eng.spawn("edge", child, limit);
            eng.spawn("late", child, limit + 30 * i);
            co_await Delay{30};
        }
    });

    eng.runUntil(limit);
    for (const Cycles t : resumed)
        EXPECT_LT(t, limit); // every resume strictly below the limit
    EXPECT_LT(eng.now(), limit);
    EXPECT_GT(eng.liveActors(), 0u); // at/after-limit actors untouched

    eng.run();
    EXPECT_EQ(eng.liveActors(), 0u);
}

TEST(Engine, RunUntilExactBoundaryExcluded)
{
    Engine eng;
    bool at_limit_ran = false;
    eng.spawn(
        "edge",
        [&](ActorCtx &) -> Task {
            at_limit_ran = true;
            co_return;
        },
        100);
    eng.runUntil(100);
    EXPECT_FALSE(at_limit_ran);
    eng.runUntil(101);
    EXPECT_TRUE(at_limit_ran);
}

TEST(Engine, ExtendedStatsConsistent)
{
    Engine eng;
    for (int k = 0; k < 8; ++k) {
        eng.spawn("w", [](ActorCtx &) -> Task {
            for (int i = 0; i < 4; ++i)
                co_await Delay{5};
        });
    }
    eng.run();
    const auto s = eng.stats();
    EXPECT_EQ(s.spawned, 8u);
    EXPECT_EQ(s.steps, 8u * 5u); // initial resume + 4 delays each
    // Every resume either requeues the actor or retires it.
    EXPECT_EQ(s.requeues, s.steps - s.spawned);
    EXPECT_LE(s.fastRequeues, s.requeues);
    EXPECT_EQ(s.peakQueued, 8u);
    EXPECT_GE(s.arenaChunks, 1u);
    EXPECT_GT(s.arenaBytes, 0u);
}

TEST(Engine, DestructorFeedsThreadProfile)
{
    const EngineProfile before = threadEngineProfile();
    {
        Engine eng;
        eng.spawn("a", [](ActorCtx &) -> Task {
            co_await Delay{1};
            co_await Delay{1};
        });
        eng.run();
    }
    const EngineProfile &after = threadEngineProfile();
    EXPECT_EQ(after.engines, before.engines + 1);
    EXPECT_EQ(after.steps, before.steps + 3);
    EXPECT_EQ(after.spawned, before.spawned + 1);
}

TEST(Engine, ManyActorsAllComplete)
{
    Engine eng;
    int done = 0;
    for (int k = 0; k < 200; ++k) {
        eng.spawn("w", [&done, k](ActorCtx &) -> Task {
            co_await Delay{static_cast<Cycles>((k * 37) % 101 + 1)};
            ++done;
        });
    }
    eng.run();
    EXPECT_EQ(done, 200);
    EXPECT_EQ(eng.totalSpawned(), 200u);
}

TEST(FramePool, SameThreadReleaseParksAndReuses)
{
    const std::size_t n = 100; // small frame, well inside the buckets
    void *p = FramePool::allocate(n);
    ASSERT_NE(p, nullptr);
    // Earlier tests park frames in the same bucket, so take the
    // baseline after the allocate (which may have popped one).
    const std::size_t base = FramePool::pooledBlocks();
    FramePool::release(p, n);
    EXPECT_EQ(FramePool::pooledBlocks(), base + 1);
    // Same-size allocation pops the freshly parked block (LIFO).
    void *q = FramePool::allocate(n);
    EXPECT_EQ(q, p);
    EXPECT_EQ(FramePool::pooledBlocks(), base);
    FramePool::release(q, n);
}

TEST(FramePool, CrossThreadFreeBypassesBothPools)
{
    // The sharded-engine regression: a coroutine frame allocated on
    // one conduction worker may be destroyed on another (or on the
    // host thread). The ownership header must route such frees to the
    // global allocator -- neither the allocating thread's pool nor
    // the freeing thread's pool may absorb the block.
    const std::size_t n = 100;
    void *p = FramePool::allocate(n);
    // Measured after the allocate: it may have popped a parked block.
    const std::size_t host_before = FramePool::pooledBlocks();
    std::size_t worker_delta = 1;
    std::thread worker([&] {
        const std::size_t before = FramePool::pooledBlocks();
        FramePool::release(p, n);
        worker_delta = FramePool::pooledBlocks() - before;
    });
    worker.join();
    EXPECT_EQ(worker_delta, 0u);
    EXPECT_EQ(FramePool::pooledBlocks(), host_before);
}

TEST(FramePool, WorkerAllocationFreedOnHostBypassesPools)
{
    // Mirror direction: allocated on a pool thread whose freelists may
    // be recycled (or the thread dead) by the time the host frees it.
    const std::size_t n = 100;
    void *p = nullptr;
    std::thread worker([&] { p = FramePool::allocate(n); });
    worker.join();
    ASSERT_NE(p, nullptr);
    const std::size_t host_before = FramePool::pooledBlocks();
    FramePool::release(p, n);
    EXPECT_EQ(FramePool::pooledBlocks(), host_before);
}

TEST(FramePool, OversizeFramesAreNeverPooled)
{
    // Above the bucket ceiling the header is tagged null: release goes
    // straight to operator delete on every thread.
    const std::size_t n = FramePool::kBuckets * FramePool::kGranule + 64;
    const std::size_t before = FramePool::pooledBlocks();
    void *p = FramePool::allocate(n);
    ASSERT_NE(p, nullptr);
    FramePool::release(p, n);
    EXPECT_EQ(FramePool::pooledBlocks(), before);
}

} // namespace
} // namespace gpubox::sim
