/**
 * @file
 * Unit tests for the interconnect: DGX-1 topology shape, constructor
 * validation, route tables (symmetry, minimality, determinism), peer
 * checks, multi-hop fabric latency and contention.
 */

#include <gtest/gtest.h>

#include "noc/fabric.hh"
#include "noc/topology.hh"
#include "util/log.hh"

namespace gpubox::noc
{
namespace
{

TEST(Topology, Dgx1Shape)
{
    const Topology t = Topology::dgx1();
    EXPECT_EQ(t.numGpus(), 8);
    EXPECT_EQ(t.links().size(), 16u); // 8 GPUs x 4 ports / 2
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_EQ(t.degree(g), 4) << "GPU " << g;
}

TEST(Topology, Dgx1QuadsFullyConnected)
{
    const Topology t = Topology::dgx1();
    for (GpuId a = 0; a < 4; ++a)
        for (GpuId b = a + 1; b < 4; ++b)
            EXPECT_TRUE(t.connected(a, b)) << a << "-" << b;
    for (GpuId a = 4; a < 8; ++a)
        for (GpuId b = a + 1; b < 8; ++b)
            EXPECT_TRUE(t.connected(a, b)) << a << "-" << b;
}

TEST(Topology, Dgx1CrossLinks)
{
    const Topology t = Topology::dgx1();
    EXPECT_TRUE(t.connected(0, 4));
    EXPECT_TRUE(t.connected(1, 5));
    EXPECT_TRUE(t.connected(2, 6));
    EXPECT_TRUE(t.connected(3, 7));
    // Non-matching cross pairs are NOT single-hop.
    EXPECT_FALSE(t.connected(0, 5));
    EXPECT_FALSE(t.connected(1, 6));
    EXPECT_FALSE(t.connected(0, 7));
}

TEST(Topology, ConnectivityIsSymmetric)
{
    const Topology t = Topology::dgx1();
    for (GpuId a = 0; a < 8; ++a)
        for (GpuId b = 0; b < 8; ++b)
            EXPECT_EQ(t.connected(a, b), t.connected(b, a));
}

TEST(Topology, SelfIsNotConnected)
{
    const Topology t = Topology::dgx1();
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_FALSE(t.connected(g, g));
}

TEST(Topology, PeersOfMatchesDegree)
{
    const Topology t = Topology::dgx1();
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_EQ(static_cast<int>(t.peersOf(g).size()), t.degree(g));
}

TEST(Topology, FullyConnected)
{
    const Topology t = Topology::fullyConnected(4);
    EXPECT_EQ(t.links().size(), 6u);
    for (GpuId a = 0; a < 4; ++a)
        for (GpuId b = 0; b < 4; ++b)
            EXPECT_EQ(t.connected(a, b), a != b);
}

TEST(Topology, RingShape)
{
    const Topology t = Topology::ring(5);
    EXPECT_EQ(t.links().size(), 5u);
    EXPECT_TRUE(t.connected(0, 4));
    EXPECT_TRUE(t.connected(2, 3));
    EXPECT_FALSE(t.connected(0, 2));
}

TEST(Topology, OutOfRangeQueriesAreFalse)
{
    const Topology t = Topology::dgx1();
    EXPECT_FALSE(t.connected(-1, 0));
    EXPECT_FALSE(t.connected(0, 8));
    EXPECT_EQ(t.linkIndex(0, 99), -1);
    EXPECT_EQ(t.hopCount(-1, 3), -1);
    EXPECT_FALSE(t.reachable(0, 8));
}

// ---- constructor validation --------------------------------------------

TEST(TopologyValidation, DegenerateRingIsFatal)
{
    // A 2-node "ring" would lay the same link twice; n < 3 must be
    // rejected with a clear message rather than silently accepted.
    EXPECT_THROW(Topology::ring(2), FatalError);
    EXPECT_THROW(Topology::ring(1), FatalError);
    EXPECT_THROW(Topology::ring(0), FatalError);
    EXPECT_THROW(Topology::ring(-4), FatalError);
    EXPECT_NO_THROW(Topology::ring(3));
}

TEST(TopologyValidation, DegenerateFullyConnectedIsFatal)
{
    EXPECT_THROW(Topology::fullyConnected(1), FatalError);
    EXPECT_THROW(Topology::fullyConnected(0), FatalError);
    EXPECT_THROW(Topology::fullyConnected(-1), FatalError);
    EXPECT_NO_THROW(Topology::fullyConnected(2));
}

TEST(TopologyValidation, SelfLinkIsFatal)
{
    EXPECT_THROW(Topology::custom("bad", 4, {{0, 1}, {2, 2}}),
                 FatalError);
}

TEST(TopologyValidation, DuplicateLinkIsFatal)
{
    EXPECT_THROW(Topology::custom("bad", 4, {{0, 1}, {0, 1}}),
                 FatalError);
    // The reversed orientation is the same undirected link.
    EXPECT_THROW(Topology::custom("bad", 4, {{0, 1}, {1, 0}}),
                 FatalError);
}

TEST(TopologyValidation, OutOfRangeLinkIsFatal)
{
    EXPECT_THROW(Topology::custom("bad", 4, {{0, 4}}), FatalError);
    EXPECT_THROW(Topology::custom("bad", 4, {{-1, 2}}), FatalError);
}

TEST(TopologyValidation, CustomGraphWorks)
{
    // A path 0-1-2-3 plus a stub 3-0 closing the square.
    const Topology t =
        Topology::custom("square", 4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    EXPECT_EQ(t.name(), "square");
    EXPECT_EQ(t.links().size(), 4u);
    EXPECT_EQ(t.hopCount(0, 2), 2);
}

// ---- route tables ------------------------------------------------------

TEST(Routes, Dgx1HopCounts)
{
    const Topology t = Topology::dgx1();
    EXPECT_EQ(t.hopCount(0, 0), 0);
    EXPECT_EQ(t.hopCount(0, 1), 1); // intra-quad
    EXPECT_EQ(t.hopCount(0, 4), 1); // cross link
    EXPECT_EQ(t.hopCount(0, 5), 2); // non-matching cross pair
    EXPECT_EQ(t.hopCount(1, 6), 2);
    EXPECT_EQ(t.hopCount(0, 7), 2);
}

TEST(Routes, EndpointsAndAdjacency)
{
    const Topology t = Topology::dgx1();
    for (GpuId a = 0; a < t.numGpus(); ++a) {
        for (GpuId b = 0; b < t.numGpus(); ++b) {
            const auto &path = t.route(a, b);
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.front(), a);
            EXPECT_EQ(path.back(), b);
            // Every step of the route is a real link.
            for (std::size_t i = 0; i + 1 < path.size(); ++i)
                EXPECT_TRUE(t.connected(path[i], path[i + 1]));
        }
    }
}

TEST(Routes, SymmetricMinimalAndDeterministic)
{
    // Property test over several shapes: routes are symmetric
    // (route(b,a) is the reversed route(a,b)), minimal-length
    // (length == independently computed shortest distance + 1) and
    // byte-identical across repeated constructions.
    const auto check = [](const Topology &t, const Topology &again) {
        const int n = t.numGpus();
        // Independent all-pairs shortest distances (Floyd-Warshall).
        std::vector<std::vector<int>> d(
            n, std::vector<int>(n, 1 << 20));
        for (GpuId a = 0; a < n; ++a) {
            d[a][a] = 0;
            for (GpuId b = 0; b < n; ++b)
                if (t.connected(a, b))
                    d[a][b] = 1;
        }
        for (int k = 0; k < n; ++k)
            for (int i = 0; i < n; ++i)
                for (int j = 0; j < n; ++j)
                    d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);

        for (GpuId a = 0; a < n; ++a) {
            for (GpuId b = 0; b < n; ++b) {
                const auto &fwd = t.route(a, b);
                const auto &rev = t.route(b, a);
                // Symmetry.
                std::vector<GpuId> flipped(rev.rbegin(), rev.rend());
                EXPECT_EQ(fwd, flipped) << a << "->" << b;
                // Minimality.
                ASSERT_LT(d[a][b], 1 << 20);
                EXPECT_EQ(static_cast<int>(fwd.size()), d[a][b] + 1)
                    << a << "->" << b;
                EXPECT_EQ(t.hopCount(a, b), d[a][b]);
                // Determinism across constructions.
                EXPECT_EQ(fwd, again.route(a, b)) << a << "->" << b;
            }
        }
    };
    check(Topology::dgx1(), Topology::dgx1());
    check(Topology::ring(6), Topology::ring(6));
    check(Topology::fullyConnected(5), Topology::fullyConnected(5));
    check(Topology::custom("h", 6, {{0, 1}, {1, 2}, {3, 4}, {4, 5},
                                    {0, 3}, {2, 5}}),
          Topology::custom("h", 6, {{0, 1}, {1, 2}, {3, 4}, {4, 5},
                                    {0, 3}, {2, 5}}));
}

TEST(Routes, TieBreaksTowardLowestNextHop)
{
    // Ring of 4: 0 and 2 are joined by 0-1-2 and 0-3-2; the lowest
    // next-hop rule must pick 1.
    const Topology t = Topology::ring(4);
    const std::vector<GpuId> expect{0, 1, 2};
    EXPECT_EQ(t.route(0, 2), expect);
    EXPECT_EQ(t.routeString(0, 2), "0 -> 1 -> 2");
}

TEST(Routes, DisconnectedPairsHaveNoRoute)
{
    const Topology t =
        Topology::custom("islands", 4, {{0, 1}, {2, 3}});
    EXPECT_EQ(t.hopCount(0, 2), -1);
    EXPECT_FALSE(t.reachable(1, 3));
    EXPECT_TRUE(t.route(0, 3).empty());
    EXPECT_EQ(t.routeString(0, 3), "(none)");
    EXPECT_TRUE(t.reachable(0, 1));
}

TEST(Routes, OutOfRangeRouteIsFatal)
{
    const Topology t = Topology::dgx1();
    EXPECT_THROW(t.route(0, 99), FatalError);
    EXPECT_THROW(t.route(-1, 0), FatalError);
}

// ---- fabric ------------------------------------------------------------

TEST(Fabric, BaseHopLatency)
{
    const Topology t = Topology::dgx1();
    LinkParams p;
    p.hopCycles = 180;
    p.freeSlotsPerWindow = 1000; // no contention
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 0), 180u);
    EXPECT_EQ(fabric.totalTransfers(), 1u);
    EXPECT_EQ(fabric.linkTransfers(0, 1), 1u);
    EXPECT_EQ(fabric.linkTransfers(1, 0), 1u); // undirected
}

TEST(Fabric, MultiHopTraverseChargesEveryLink)
{
    const Topology t = Topology::dgx1();
    LinkParams p;
    p.hopCycles = 100;
    p.freeSlotsPerWindow = 1000; // no contention
    Fabric fabric(t, p);
    // 0 and 5 are two hops apart; the deterministic route is 0-1-5.
    EXPECT_EQ(t.routeString(0, 5), "0 -> 1 -> 5");
    EXPECT_EQ(fabric.traverse(0, 5, 0), 200u);
    EXPECT_EQ(fabric.totalTransfers(), 2u);
    EXPECT_EQ(fabric.linkTransfers(0, 1), 1u);
    EXPECT_EQ(fabric.linkTransfers(1, 5), 1u);
    EXPECT_EQ(fabric.linkTransfers(0, 4), 0u); // alternative unused
}

TEST(Fabric, MultiHopSeesPerLinkContention)
{
    const Topology t = Topology::ring(4);
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 1;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    // Fill link 0-1's free slot...
    EXPECT_EQ(fabric.traverse(0, 1, 0), 100u);
    // ...then route 0-1-2: first hop queues, second is free.
    EXPECT_EQ(fabric.traverse(0, 2, 0), 100u + 50u + 100u);
}

TEST(Fabric, UnreachableTraverseIsFatal)
{
    const Topology t =
        Topology::custom("islands", 4, {{0, 1}, {2, 3}});
    Fabric fabric(t, LinkParams{});
    EXPECT_THROW(fabric.traverse(0, 2, 0), FatalError);
    EXPECT_THROW(fabric.traverse(1, 1, 0), FatalError); // self
}

TEST(Fabric, TransferSerializesAtBottleneckLink)
{
    // Path 0-1-2 with a narrow middle link.
    const Topology t = Topology::custom("path", 3, {{0, 1}, {1, 2}});
    std::vector<LinkParams> per_link(2);
    for (auto &p : per_link) {
        p.hopCycles = 100;
        p.freeSlotsPerWindow = 1000;
        p.bytesPerCycle = 64;
    }
    per_link[1].bytesPerCycle = 8;
    Fabric fabric(t, std::move(per_link));
    // Route 0-1-2: 2 hops + 4096 bytes at min(64, 8) B/cycle.
    EXPECT_EQ(fabric.transferCycles(0, 2, 0, 4096), 200u + 512u);
    // The wide single-hop leg serializes at its own bandwidth.
    EXPECT_EQ(fabric.transferCycles(1, 0, 0, 4096), 100u + 64u);
}

TEST(Fabric, PerLinkParamCountIsValidated)
{
    const Topology t = Topology::ring(4);
    EXPECT_THROW(Fabric(t, std::vector<LinkParams>(3)), FatalError);
    LinkParams zero_bw;
    zero_bw.bytesPerCycle = 0;
    EXPECT_THROW(Fabric(t, zero_bw), FatalError);
}

TEST(Fabric, ContentionAddsQueueing)
{
    const Topology t = Topology::fullyConnected(2);
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 2;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 10), 100u);
    EXPECT_EQ(fabric.traverse(0, 1, 20), 100u);
    EXPECT_EQ(fabric.traverse(0, 1, 30), 150u);
    EXPECT_EQ(fabric.traverse(0, 1, 40), 200u);
    // New window resets.
    EXPECT_EQ(fabric.traverse(0, 1, 1500), 100u);
}

TEST(Fabric, LinksAreIndependent)
{
    const Topology t = Topology::fullyConnected(3);
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 1;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 0), 100u);
    // A different link is unaffected by 0-1's occupancy.
    EXPECT_EQ(fabric.traverse(0, 2, 0), 100u);
    EXPECT_EQ(fabric.traverse(1, 2, 0), 100u);
}

TEST(Fabric, ResetStatsClearsCounters)
{
    const Topology t = Topology::fullyConnected(2);
    Fabric fabric(t, LinkParams{});
    fabric.traverse(0, 1, 0);
    fabric.resetStats();
    EXPECT_EQ(fabric.totalTransfers(), 0u);
    EXPECT_EQ(fabric.linkTransfers(0, 1), 0u);
}

} // namespace
} // namespace gpubox::noc
