/**
 * @file
 * Unit tests for the interconnect: DGX-1 topology shape, peer checks,
 * fabric latency and contention.
 */

#include <gtest/gtest.h>

#include "noc/fabric.hh"
#include "noc/topology.hh"
#include "util/log.hh"

namespace gpubox::noc
{
namespace
{

TEST(Topology, Dgx1Shape)
{
    const Topology t = Topology::dgx1();
    EXPECT_EQ(t.numGpus(), 8);
    EXPECT_EQ(t.links().size(), 16u); // 8 GPUs x 4 ports / 2
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_EQ(t.degree(g), 4) << "GPU " << g;
}

TEST(Topology, Dgx1QuadsFullyConnected)
{
    const Topology t = Topology::dgx1();
    for (GpuId a = 0; a < 4; ++a)
        for (GpuId b = a + 1; b < 4; ++b)
            EXPECT_TRUE(t.connected(a, b)) << a << "-" << b;
    for (GpuId a = 4; a < 8; ++a)
        for (GpuId b = a + 1; b < 8; ++b)
            EXPECT_TRUE(t.connected(a, b)) << a << "-" << b;
}

TEST(Topology, Dgx1CrossLinks)
{
    const Topology t = Topology::dgx1();
    EXPECT_TRUE(t.connected(0, 4));
    EXPECT_TRUE(t.connected(1, 5));
    EXPECT_TRUE(t.connected(2, 6));
    EXPECT_TRUE(t.connected(3, 7));
    // Non-matching cross pairs are NOT single-hop.
    EXPECT_FALSE(t.connected(0, 5));
    EXPECT_FALSE(t.connected(1, 6));
    EXPECT_FALSE(t.connected(0, 7));
}

TEST(Topology, ConnectivityIsSymmetric)
{
    const Topology t = Topology::dgx1();
    for (GpuId a = 0; a < 8; ++a)
        for (GpuId b = 0; b < 8; ++b)
            EXPECT_EQ(t.connected(a, b), t.connected(b, a));
}

TEST(Topology, SelfIsNotConnected)
{
    const Topology t = Topology::dgx1();
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_FALSE(t.connected(g, g));
}

TEST(Topology, PeersOfMatchesDegree)
{
    const Topology t = Topology::dgx1();
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_EQ(static_cast<int>(t.peersOf(g).size()), t.degree(g));
}

TEST(Topology, FullyConnected)
{
    const Topology t = Topology::fullyConnected(4);
    EXPECT_EQ(t.links().size(), 6u);
    for (GpuId a = 0; a < 4; ++a)
        for (GpuId b = 0; b < 4; ++b)
            EXPECT_EQ(t.connected(a, b), a != b);
}

TEST(Topology, RingShape)
{
    const Topology t = Topology::ring(5);
    EXPECT_EQ(t.links().size(), 5u);
    EXPECT_TRUE(t.connected(0, 4));
    EXPECT_TRUE(t.connected(2, 3));
    EXPECT_FALSE(t.connected(0, 2));
}

TEST(Topology, TwoGpuRingHasSingleLink)
{
    const Topology t = Topology::ring(2);
    EXPECT_EQ(t.links().size(), 1u);
    EXPECT_TRUE(t.connected(0, 1));
}

TEST(Topology, OutOfRangeQueriesAreFalse)
{
    const Topology t = Topology::dgx1();
    EXPECT_FALSE(t.connected(-1, 0));
    EXPECT_FALSE(t.connected(0, 8));
    EXPECT_EQ(t.linkIndex(0, 99), -1);
}

TEST(Fabric, BaseHopLatency)
{
    const Topology t = Topology::dgx1();
    FabricParams p;
    p.hopCycles = 180;
    p.freeSlotsPerWindow = 1000; // no contention
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 0), 180u);
    EXPECT_EQ(fabric.totalTransfers(), 1u);
    EXPECT_EQ(fabric.linkTransfers(0, 1), 1u);
    EXPECT_EQ(fabric.linkTransfers(1, 0), 1u); // undirected
}

TEST(Fabric, NonAdjacentTraverseIsFatal)
{
    const Topology t = Topology::dgx1();
    Fabric fabric(t, FabricParams{});
    EXPECT_THROW(fabric.traverse(0, 5, 0), FatalError);
}

TEST(Fabric, ContentionAddsQueueing)
{
    const Topology t = Topology::fullyConnected(2);
    FabricParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 2;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 10), 100u);
    EXPECT_EQ(fabric.traverse(0, 1, 20), 100u);
    EXPECT_EQ(fabric.traverse(0, 1, 30), 150u);
    EXPECT_EQ(fabric.traverse(0, 1, 40), 200u);
    // New window resets.
    EXPECT_EQ(fabric.traverse(0, 1, 1500), 100u);
}

TEST(Fabric, LinksAreIndependent)
{
    const Topology t = Topology::fullyConnected(3);
    FabricParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 1;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 0), 100u);
    // A different link is unaffected by 0-1's occupancy.
    EXPECT_EQ(fabric.traverse(0, 2, 0), 100u);
    EXPECT_EQ(fabric.traverse(1, 2, 0), 100u);
}

TEST(Fabric, ResetStatsClearsCounters)
{
    const Topology t = Topology::fullyConnected(2);
    Fabric fabric(t, FabricParams{});
    fabric.traverse(0, 1, 0);
    fabric.resetStats();
    EXPECT_EQ(fabric.totalTransfers(), 0u);
    EXPECT_EQ(fabric.linkTransfers(0, 1), 0u);
}

TEST(Topology, DuplicateLinkIsFatal)
{
    // Exercised through the factory path: rings of size 2 would have a
    // duplicate link if not special-cased.
    EXPECT_NO_THROW(Topology::ring(2));
}

} // namespace
} // namespace gpubox::noc
