/**
 * @file
 * Unit tests for the interconnect: DGX-1 topology shape, constructor
 * validation, mixed GPU/switch graphs, route tables (symmetry,
 * minimality, determinism over endpoint and switched topologies),
 * peer checks, multi-hop fabric latency, port-level arbitration and
 * crossbar contention.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "noc/fabric.hh"
#include "noc/topology.hh"
#include "util/log.hh"

namespace gpubox::noc
{
namespace
{

TEST(Topology, Dgx1Shape)
{
    const Topology t = Topology::dgx1();
    EXPECT_EQ(t.numGpus(), 8);
    EXPECT_EQ(t.links().size(), 16u); // 8 GPUs x 4 ports / 2
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_EQ(t.degree(g), 4) << "GPU " << g;
}

TEST(Topology, Dgx1QuadsFullyConnected)
{
    const Topology t = Topology::dgx1();
    for (GpuId a = 0; a < 4; ++a)
        for (GpuId b = a + 1; b < 4; ++b)
            EXPECT_TRUE(t.connected(a, b)) << a << "-" << b;
    for (GpuId a = 4; a < 8; ++a)
        for (GpuId b = a + 1; b < 8; ++b)
            EXPECT_TRUE(t.connected(a, b)) << a << "-" << b;
}

TEST(Topology, Dgx1CrossLinks)
{
    const Topology t = Topology::dgx1();
    EXPECT_TRUE(t.connected(0, 4));
    EXPECT_TRUE(t.connected(1, 5));
    EXPECT_TRUE(t.connected(2, 6));
    EXPECT_TRUE(t.connected(3, 7));
    // Non-matching cross pairs are NOT single-hop.
    EXPECT_FALSE(t.connected(0, 5));
    EXPECT_FALSE(t.connected(1, 6));
    EXPECT_FALSE(t.connected(0, 7));
}

TEST(Topology, ConnectivityIsSymmetric)
{
    const Topology t = Topology::dgx1();
    for (GpuId a = 0; a < 8; ++a)
        for (GpuId b = 0; b < 8; ++b)
            EXPECT_EQ(t.connected(a, b), t.connected(b, a));
}

TEST(Topology, SelfIsNotConnected)
{
    const Topology t = Topology::dgx1();
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_FALSE(t.connected(g, g));
}

TEST(Topology, PeersOfMatchesDegree)
{
    const Topology t = Topology::dgx1();
    for (GpuId g = 0; g < 8; ++g)
        EXPECT_EQ(static_cast<int>(t.peersOf(g).size()), t.degree(g));
}

TEST(Topology, FullyConnected)
{
    const Topology t = Topology::fullyConnected(4);
    EXPECT_EQ(t.links().size(), 6u);
    for (GpuId a = 0; a < 4; ++a)
        for (GpuId b = 0; b < 4; ++b)
            EXPECT_EQ(t.connected(a, b), a != b);
}

TEST(Topology, RingShape)
{
    const Topology t = Topology::ring(5);
    EXPECT_EQ(t.links().size(), 5u);
    EXPECT_TRUE(t.connected(0, 4));
    EXPECT_TRUE(t.connected(2, 3));
    EXPECT_FALSE(t.connected(0, 2));
}

TEST(Topology, OutOfRangeQueriesAreFalse)
{
    const Topology t = Topology::dgx1();
    EXPECT_FALSE(t.connected(-1, 0));
    EXPECT_FALSE(t.connected(0, 8));
    EXPECT_EQ(t.linkIndex(0, 99), -1);
    EXPECT_EQ(t.hopCount(-1, 3), -1);
    EXPECT_FALSE(t.reachable(0, 8));
}

// ---- constructor validation --------------------------------------------

TEST(TopologyValidation, DegenerateRingIsFatal)
{
    // A 2-node "ring" would lay the same link twice; n < 3 must be
    // rejected with a clear message rather than silently accepted.
    EXPECT_THROW(Topology::ring(2), FatalError);
    EXPECT_THROW(Topology::ring(1), FatalError);
    EXPECT_THROW(Topology::ring(0), FatalError);
    EXPECT_THROW(Topology::ring(-4), FatalError);
    EXPECT_NO_THROW(Topology::ring(3));
}

TEST(TopologyValidation, DegenerateFullyConnectedIsFatal)
{
    EXPECT_THROW(Topology::fullyConnected(1), FatalError);
    EXPECT_THROW(Topology::fullyConnected(0), FatalError);
    EXPECT_THROW(Topology::fullyConnected(-1), FatalError);
    EXPECT_NO_THROW(Topology::fullyConnected(2));
}

TEST(TopologyValidation, SelfLinkIsFatal)
{
    EXPECT_THROW(Topology::custom("bad", 4, {{0, 1}, {2, 2}}),
                 FatalError);
}

TEST(TopologyValidation, DuplicateLinkIsFatal)
{
    EXPECT_THROW(Topology::custom("bad", 4, {{0, 1}, {0, 1}}),
                 FatalError);
    // The reversed orientation is the same undirected link.
    EXPECT_THROW(Topology::custom("bad", 4, {{0, 1}, {1, 0}}),
                 FatalError);
}

TEST(TopologyValidation, OutOfRangeLinkIsFatal)
{
    EXPECT_THROW(Topology::custom("bad", 4, {{0, 4}}), FatalError);
    EXPECT_THROW(Topology::custom("bad", 4, {{-1, 2}}), FatalError);
}

TEST(TopologyValidation, CustomGraphWorks)
{
    // A path 0-1-2-3 plus a stub 3-0 closing the square.
    const Topology t =
        Topology::custom("square", 4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    EXPECT_EQ(t.name(), "square");
    EXPECT_EQ(t.links().size(), 4u);
    EXPECT_EQ(t.hopCount(0, 2), 2);
}

// ---- mixed GPU/switch graphs -------------------------------------------

TEST(SwitchedTopology, CrossbarShape)
{
    const Topology t = Topology::crossbar("xbar", 8, 3);
    EXPECT_EQ(t.numGpus(), 8);
    EXPECT_EQ(t.numSwitches(), 3);
    EXPECT_EQ(t.numNodes(), 11);
    EXPECT_EQ(t.links().size(), 24u); // every GPU to every plane
    for (NodeId g = 0; g < 8; ++g) {
        EXPECT_EQ(t.kind(g), NodeKind::Gpu);
        EXPECT_TRUE(t.isGpu(g));
        EXPECT_EQ(t.degree(g), 3); // one port per plane
    }
    for (NodeId sw = 8; sw < 11; ++sw) {
        EXPECT_EQ(t.kind(sw), NodeKind::Switch);
        EXPECT_TRUE(t.isSwitch(sw));
        EXPECT_EQ(t.degree(sw), 8); // one port per GPU
        EXPECT_EQ(t.nodeName(sw), "sw" + std::to_string(sw - 8));
    }
    EXPECT_EQ(t.nodeName(5), "5");
    // GPUs never link directly: every pair is two switched hops.
    for (NodeId a = 0; a < 8; ++a)
        for (NodeId b = a + 1; b < 8; ++b) {
            EXPECT_FALSE(t.connected(a, b));
            EXPECT_EQ(t.hopCount(a, b), 2);
        }
}

TEST(SwitchedTopology, CrossbarStripesAcrossPlanes)
{
    // All-switch tie candidates stripe by (a + b) mod planes, so
    // disjoint pairs spread over the planes instead of collapsing
    // onto sw0 -- while the route stays a pure function of the
    // endpoints.
    const Topology t = Topology::crossbar("xbar", 8, 3);
    for (NodeId a = 0; a < 8; ++a) {
        for (NodeId b = a + 1; b < 8; ++b) {
            const auto &route = t.route(a, b);
            ASSERT_EQ(route.size(), 3u);
            EXPECT_EQ(route[1], 8 + (a + b) % 3) << a << "," << b;
        }
    }
    EXPECT_EQ(t.routeString(0, 1), "0 -> sw1 -> 1");
}

TEST(SwitchedTopology, Validation)
{
    EXPECT_THROW(Topology::crossbar("bad", 1, 2), FatalError);
    EXPECT_THROW(Topology::crossbar("bad", 4, 0), FatalError);
    // An unplugged switch is a descriptor bug.
    EXPECT_THROW(Topology::switched("bad", 2, 1, {{0, 1}}),
                 FatalError);
    // Switch ids live in [numGpus, numNodes): beyond is fatal.
    EXPECT_THROW(Topology::switched("bad", 2, 1, {{0, 3}}),
                 FatalError);
    EXPECT_NO_THROW(
        Topology::switched("ok", 2, 1, {{0, 2}, {1, 2}}));
}

TEST(SwitchedTopology, NodeQueriesValidateRange)
{
    const Topology t = Topology::crossbar("xbar", 4, 2);
    EXPECT_THROW(t.kind(-1), FatalError);
    EXPECT_THROW(t.kind(6), FatalError);
    EXPECT_THROW(t.nodeName(6), FatalError);
    EXPECT_FALSE(t.isGpu(6));
    EXPECT_FALSE(t.isSwitch(6));
    EXPECT_FALSE(t.isSwitch(-1));
}

// ---- route tables ------------------------------------------------------

TEST(Routes, Dgx1HopCounts)
{
    const Topology t = Topology::dgx1();
    EXPECT_EQ(t.hopCount(0, 0), 0);
    EXPECT_EQ(t.hopCount(0, 1), 1); // intra-quad
    EXPECT_EQ(t.hopCount(0, 4), 1); // cross link
    EXPECT_EQ(t.hopCount(0, 5), 2); // non-matching cross pair
    EXPECT_EQ(t.hopCount(1, 6), 2);
    EXPECT_EQ(t.hopCount(0, 7), 2);
}

TEST(Routes, EndpointsAndAdjacency)
{
    const Topology t = Topology::dgx1();
    for (GpuId a = 0; a < t.numGpus(); ++a) {
        for (GpuId b = 0; b < t.numGpus(); ++b) {
            const auto &path = t.route(a, b);
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(path.front(), a);
            EXPECT_EQ(path.back(), b);
            // Every step of the route is a real link.
            for (std::size_t i = 0; i + 1 < path.size(); ++i)
                EXPECT_TRUE(t.connected(path[i], path[i + 1]));
        }
    }
}

TEST(Routes, SymmetricMinimalAndDeterministic)
{
    // Property test over several shapes -- pure endpoint graphs AND
    // mixed GPU/switch graphs: routes are symmetric (route(b,a) is
    // the reversed route(a,b)), minimal-length (length ==
    // independently computed shortest distance + 1) and
    // byte-identical across repeated constructions. The plane-
    // striping tie-break is a pure function of the endpoints, so the
    // properties hold unchanged on switched fabrics.
    const auto check = [](const Topology &t, const Topology &again) {
        const int n = t.numNodes();
        // Independent all-pairs shortest distances (Floyd-Warshall).
        std::vector<std::vector<int>> d(
            n, std::vector<int>(n, 1 << 20));
        for (GpuId a = 0; a < n; ++a) {
            d[a][a] = 0;
            for (GpuId b = 0; b < n; ++b)
                if (t.connected(a, b))
                    d[a][b] = 1;
        }
        for (int k = 0; k < n; ++k)
            for (int i = 0; i < n; ++i)
                for (int j = 0; j < n; ++j)
                    d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);

        for (GpuId a = 0; a < n; ++a) {
            for (GpuId b = 0; b < n; ++b) {
                // route() returns a view into thread-local scratch:
                // copy before computing the next route.
                const std::vector<GpuId> fwd = t.route(a, b).toVector();
                const std::vector<GpuId> rev = t.route(b, a).toVector();
                // Symmetry.
                const std::vector<GpuId> flipped(rev.rbegin(),
                                                 rev.rend());
                EXPECT_EQ(fwd, flipped) << a << "->" << b;
                // Minimality.
                ASSERT_LT(d[a][b], 1 << 20);
                EXPECT_EQ(static_cast<int>(fwd.size()), d[a][b] + 1)
                    << a << "->" << b;
                EXPECT_EQ(t.hopCount(a, b), d[a][b]);
                // Determinism across constructions.
                EXPECT_EQ(again.route(a, b), fwd) << a << "->" << b;
            }
        }
    };
    check(Topology::dgx1(), Topology::dgx1());
    check(Topology::ring(6), Topology::ring(6));
    check(Topology::fullyConnected(5), Topology::fullyConnected(5));
    check(Topology::custom("h", 6, {{0, 1}, {1, 2}, {3, 4}, {4, 5},
                                    {0, 3}, {2, 5}}),
          Topology::custom("h", 6, {{0, 1}, {1, 2}, {3, 4}, {4, 5},
                                    {0, 3}, {2, 5}}));
    check(Topology::crossbar("xbar", 6, 3),
          Topology::crossbar("xbar", 6, 3));
    // hgx-hybrid shape: two quads behind host switches + a trunk.
    const auto hgx = [] {
        std::vector<Link> links;
        for (NodeId a = 0; a < 4; ++a)
            for (NodeId b = a + 1; b < 4; ++b)
                links.emplace_back(a, b);
        for (NodeId a = 4; a < 8; ++a)
            for (NodeId b = a + 1; b < 8; ++b)
                links.emplace_back(a, b);
        for (NodeId g = 0; g < 4; ++g)
            links.emplace_back(g, 8);
        for (NodeId g = 4; g < 8; ++g)
            links.emplace_back(g, 9);
        links.emplace_back(8, 9);
        return Topology::switched("hgx", 8, 2, std::move(links));
    };
    check(hgx(), hgx());
    // Multi-box superpod: NIC and spine tiers keep the properties.
    check(Topology::superpod("pod", 3, 4, 2, 2),
          Topology::superpod("pod", 3, 4, 2, 2));
}

TEST(Routes, TieBreaksTowardLowestNextHop)
{
    // Ring of 4: 0 and 2 are joined by 0-1-2 and 0-3-2; the lowest
    // next-hop rule must pick 1.
    const Topology t = Topology::ring(4);
    const std::vector<GpuId> expect{0, 1, 2};
    EXPECT_EQ(t.route(0, 2), expect);
    EXPECT_EQ(t.routeString(0, 2), "0 -> 1 -> 2");
}

TEST(Routes, DisconnectedPairsHaveNoRoute)
{
    const Topology t =
        Topology::custom("islands", 4, {{0, 1}, {2, 3}});
    EXPECT_EQ(t.hopCount(0, 2), -1);
    EXPECT_FALSE(t.reachable(1, 3));
    EXPECT_TRUE(t.route(0, 3).empty());
    EXPECT_EQ(t.routeString(0, 3), "(none)");
    EXPECT_TRUE(t.reachable(0, 1));
}

TEST(Routes, OutOfRangeRouteIsFatal)
{
    const Topology t = Topology::dgx1();
    EXPECT_THROW(t.route(0, 99), FatalError);
    EXPECT_THROW(t.route(-1, 0), FatalError);
}

// ---- fabric ------------------------------------------------------------

TEST(Fabric, BaseHopLatency)
{
    const Topology t = Topology::dgx1();
    LinkParams p;
    p.hopCycles = 180;
    p.freeSlotsPerWindow = 1000; // no contention
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 0), 180u);
    EXPECT_EQ(fabric.totalTransfers(), 1u);
    EXPECT_EQ(fabric.linkTransfers(0, 1), 1u);
    EXPECT_EQ(fabric.linkTransfers(1, 0), 1u); // undirected
}

TEST(Fabric, MultiHopTraverseChargesEveryLink)
{
    const Topology t = Topology::dgx1();
    LinkParams p;
    p.hopCycles = 100;
    p.freeSlotsPerWindow = 1000; // no contention
    Fabric fabric(t, p);
    // 0 and 5 are two hops apart; the deterministic route is 0-1-5.
    EXPECT_EQ(t.routeString(0, 5), "0 -> 1 -> 5");
    EXPECT_EQ(fabric.traverse(0, 5, 0), 200u);
    EXPECT_EQ(fabric.totalTransfers(), 2u);
    EXPECT_EQ(fabric.linkTransfers(0, 1), 1u);
    EXPECT_EQ(fabric.linkTransfers(1, 5), 1u);
    EXPECT_EQ(fabric.linkTransfers(0, 4), 0u); // alternative unused
}

TEST(Fabric, MultiHopSeesPerLinkContention)
{
    const Topology t = Topology::ring(4);
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 1;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    // Fill link 0-1's free slot...
    EXPECT_EQ(fabric.traverse(0, 1, 0), 100u);
    // ...then route 0-1-2: first hop queues, second is free.
    EXPECT_EQ(fabric.traverse(0, 2, 0), 100u + 50u + 100u);
}

TEST(Fabric, UnreachableTraverseIsFatal)
{
    const Topology t =
        Topology::custom("islands", 4, {{0, 1}, {2, 3}});
    Fabric fabric(t, LinkParams{});
    EXPECT_THROW(fabric.traverse(0, 2, 0), FatalError);
    EXPECT_THROW(fabric.traverse(1, 1, 0), FatalError); // self
}

TEST(Fabric, TransferSerializesAtBottleneckLink)
{
    // Path 0-1-2 with a narrow middle link.
    const Topology t = Topology::custom("path", 3, {{0, 1}, {1, 2}});
    std::vector<LinkParams> per_link(2);
    for (auto &p : per_link) {
        p.hopCycles = 100;
        p.freeSlotsPerWindow = 1000;
        p.bytesPerCycle = 64;
    }
    per_link[1].bytesPerCycle = 8;
    Fabric fabric(t, std::move(per_link));
    // Route 0-1-2: 2 hops + 4096 bytes at min(64, 8) B/cycle.
    EXPECT_EQ(fabric.transferCycles(0, 2, 0, 4096), 200u + 512u);
    // The wide single-hop leg serializes at its own bandwidth.
    EXPECT_EQ(fabric.transferCycles(1, 0, 0, 4096), 100u + 64u);
}

TEST(Fabric, PerLinkParamCountIsValidated)
{
    const Topology t = Topology::ring(4);
    EXPECT_THROW(Fabric(t, std::vector<LinkParams>(3)), FatalError);
    LinkParams zero_bw;
    zero_bw.bytesPerCycle = 0;
    EXPECT_THROW(Fabric(t, zero_bw), FatalError);
}

TEST(Fabric, ContentionAddsQueueing)
{
    const Topology t = Topology::fullyConnected(2);
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 2;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 10), 100u);
    EXPECT_EQ(fabric.traverse(0, 1, 20), 100u);
    EXPECT_EQ(fabric.traverse(0, 1, 30), 150u);
    EXPECT_EQ(fabric.traverse(0, 1, 40), 200u);
    // New window resets.
    EXPECT_EQ(fabric.traverse(0, 1, 1500), 100u);
}

TEST(Fabric, LinksAreIndependent)
{
    const Topology t = Topology::fullyConnected(3);
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 1;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 0), 100u);
    // A different link is unaffected by 0-1's occupancy.
    EXPECT_EQ(fabric.traverse(0, 2, 0), 100u);
    EXPECT_EQ(fabric.traverse(1, 2, 0), 100u);
}

TEST(Fabric, ResetStatsClearsCounters)
{
    const Topology t = Topology::fullyConnected(2);
    Fabric fabric(t, LinkParams{});
    fabric.traverse(0, 1, 0);
    fabric.resetStats();
    EXPECT_EQ(fabric.totalTransfers(), 0u);
    EXPECT_EQ(fabric.linkTransfers(0, 1), 0u);
}

// ---- port arbitration and crossbar contention --------------------------

namespace
{

/** 2 GPUs on one switch; contended ports, free crossbar. */
Fabric
tinySwitchFabric(const Topology &t)
{
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 1;
    p.queueCyclesPerExtra = 50;
    SwitchParams sp;
    sp.crossbarCycles = 30;
    sp.windowCycles = 1000;
    sp.freeSlotsPerWindow = 1000; // crossbar never queues here
    sp.queueCyclesPerExtra = 2;
    return Fabric(t, p, sp);
}

} // namespace

TEST(Fabric, SwitchPortsMeterEachDirectionIndependently)
{
    const Topology t =
        Topology::switched("pair", 2, 1, {{0, 2}, {1, 2}});
    Fabric fabric = tinySwitchFabric(t);
    // Route 0 -> 1 = 0 -> sw0 -> 1: two port hops + crossbar transit,
    // no queueing on first use.
    EXPECT_EQ(fabric.traverse(0, 1, 0), 100u + 30u + 100u);
    // Same direction again in the window: BOTH its ports queue.
    EXPECT_EQ(fabric.traverse(0, 1, 10), 100u + 50u + 30u + 100u + 50u);
    // The reverse direction uses the opposite ingress/egress queues,
    // which are still free -- directional port arbitration.
    EXPECT_EQ(fabric.traverse(1, 0, 20), 100u + 30u + 100u);
    // Directed counters: 2 traversals of 0->sw0, 1 of sw0->0.
    EXPECT_EQ(fabric.portTransfers(0, 2), 2u);
    EXPECT_EQ(fabric.portTransfers(2, 0), 1u);
    EXPECT_EQ(fabric.linkTransfers(0, 2), 3u);
}

TEST(Fabric, DisjointPairsContendOnSharedCrossbar)
{
    // 4 GPUs on one plane: routes 0->1 and 2->3 share no port, only
    // the crossbar -- the cross-pair interference the attack layer's
    // port channel signals through.
    const Topology t = Topology::crossbar("xbar", 4, 1);
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 1000; // ports never queue here
    p.queueCyclesPerExtra = 7;
    SwitchParams sp;
    sp.crossbarCycles = 30;
    sp.windowCycles = 1000;
    sp.freeSlotsPerWindow = 1;
    sp.queueCyclesPerExtra = 40;
    Fabric fabric(t, p, sp);
    EXPECT_EQ(fabric.traverse(0, 1, 0), 230u);
    // The disjoint pair pays the crossbar queue the first pair built.
    EXPECT_EQ(fabric.traverse(2, 3, 10), 230u + 40u);
    EXPECT_EQ(fabric.switchCrossings(4), 2u);
    EXPECT_EQ(fabric.crossbarOccupancy(4, 10), 2u);
    EXPECT_EQ(fabric.crossbarOccupancy(0, 10), 0u); // not a switch
    EXPECT_EQ(fabric.switchCrossings(0), 0u);
    // A fresh window clears the crossbar.
    EXPECT_EQ(fabric.traverse(2, 3, 1500), 230u);
}

TEST(Fabric, EndpointLinksKeepSharedBidirectionalMeter)
{
    // GPU-to-GPU links stay the legacy point-to-point model: both
    // directions contend on ONE meter (request + response legs of a
    // single access share the wire).
    const Topology t = Topology::fullyConnected(2);
    LinkParams p;
    p.hopCycles = 100;
    p.windowCycles = 1000;
    p.freeSlotsPerWindow = 1;
    p.queueCyclesPerExtra = 50;
    Fabric fabric(t, p);
    EXPECT_EQ(fabric.traverse(0, 1, 0), 100u);
    EXPECT_EQ(fabric.traverse(1, 0, 10), 150u); // queues behind 0->1
    EXPECT_EQ(fabric.portTransfers(0, 1), 2u);
    EXPECT_EQ(fabric.portTransfers(1, 0), 2u); // same meter, same sum
}

TEST(Fabric, DisjointPairSerializationIsDeterministic)
{
    // Regression: two disjoint-pair transfers arriving in one switch
    // window serialize by charge order, and the whole interleaving is
    // byte-stable across fabric instances -- the arbitration
    // determinism the stream layer's tie-break relies on.
    const Topology t = Topology::crossbar("xbar", 4, 1);
    const auto run = [&t]() {
        LinkParams p;
        p.hopCycles = 110;
        p.windowCycles = 2000;
        p.freeSlotsPerWindow = 2;
        p.queueCyclesPerExtra = 9;
        SwitchParams sp;
        sp.crossbarCycles = 30;
        sp.windowCycles = 2000;
        sp.freeSlotsPerWindow = 3;
        sp.queueCyclesPerExtra = 11;
        Fabric fabric(t, p, sp);
        std::vector<Cycles> out;
        for (int i = 0; i < 6; ++i) {
            out.push_back(fabric.traverse(0, 1, 10 * i));
            out.push_back(fabric.traverse(2, 3, 10 * i + 5));
        }
        out.push_back(fabric.switchCrossings(4));
        return out;
    };
    const auto first = run();
    EXPECT_EQ(first, run());
    // The first arrivals are cheaper than the queued tail: later
    // transfers through the shared switch really serialized.
    EXPECT_LT(first.front(), first[10]);
}

TEST(Fabric, RouteBaseCyclesMatchesUncontendedTraverse)
{
    const Topology t =
        Topology::switched("pair", 2, 1, {{0, 2}, {1, 2}});
    Fabric fabric = tinySwitchFabric(t);
    EXPECT_EQ(fabric.routeBaseCycles(0, 1), 230u);
    // Base cost reads no meter state: it never changes...
    fabric.traverse(0, 1, 0);
    EXPECT_EQ(fabric.routeBaseCycles(0, 1), 230u);
    // ...and equals a contention-free traverse.
    const Topology islands =
        Topology::custom("islands", 4, {{0, 1}, {2, 3}});
    Fabric f2(islands, LinkParams{});
    EXPECT_THROW(f2.routeBaseCycles(0, 2), FatalError);
}

// ---- multi-box superpods -----------------------------------------------

TEST(Superpod, ShapeRolesAndIslands)
{
    // 3 boxes x 4 GPUs, 2 planes per box, 2 spines: the smallest
    // interesting pod. Node order: GPUs box-major, planes box-major,
    // one NIC per GPU, then the spines.
    const Topology t = Topology::superpod("pod", 3, 4, 2, 2);
    EXPECT_EQ(t.numGpus(), 12);
    EXPECT_EQ(t.numSwitches(), 6 + 12 + 2);
    EXPECT_EQ(t.numNodes(), 32);
    EXPECT_EQ(t.numIslands(), 3);
    EXPECT_EQ(t.numSwitchesOfRole(SwitchRole::Crossbar), 6);
    EXPECT_EQ(t.numSwitchesOfRole(SwitchRole::Nic), 12);
    EXPECT_EQ(t.numSwitchesOfRole(SwitchRole::Spine), 2);
    // Per box 4 GPUs x 2 plane ports, one GPU-NIC link per GPU, and
    // every NIC uplinks to every spine.
    EXPECT_EQ(t.links().size(), 3u * 8 + 12 + 24);
    const NodeId first_plane = 12, first_nic = 18, first_spine = 30;
    for (NodeId g = 0; g < 12; ++g) {
        EXPECT_TRUE(t.isGpu(g));
        EXPECT_EQ(t.island(g), g / 4);
        EXPECT_TRUE(t.connected(g, first_nic + g));
    }
    for (NodeId p = first_plane; p < first_nic; ++p) {
        EXPECT_EQ(t.switchRole(p), SwitchRole::Crossbar);
        EXPECT_EQ(t.island(p), (p - first_plane) / 2);
        EXPECT_EQ(t.degree(p), 4); // one port per box GPU
    }
    for (NodeId nn = first_nic; nn < first_spine; ++nn) {
        EXPECT_EQ(t.switchRole(nn), SwitchRole::Nic);
        EXPECT_EQ(t.island(nn), (nn - first_nic) / 4);
        EXPECT_EQ(t.degree(nn), 1 + 2); // its GPU plus every spine
    }
    for (NodeId s = first_spine; s < 32; ++s) {
        EXPECT_EQ(t.switchRole(s), SwitchRole::Spine);
        EXPECT_EQ(t.island(s), -1); // spines belong to no chassis
        EXPECT_EQ(t.degree(s), 12); // every NIC in the pod
    }
    EXPECT_EQ(t.nodeName(first_plane), "sw0");
    EXPECT_EQ(t.nodeName(first_nic), "nic0");
    EXPECT_EQ(t.nodeName(first_spine + 1), "spine1");
    EXPECT_TRUE(t.crossIsland(0, 4));
    EXPECT_FALSE(t.crossIsland(0, 3));
    // A spine sits in no island, so no pairing with it is cross-box.
    EXPECT_FALSE(t.crossIsland(0, first_spine));
}

TEST(Superpod, Validation)
{
    EXPECT_THROW(Topology::superpod("bad", 1, 4, 2, 2), FatalError);
    EXPECT_THROW(Topology::superpod("bad", 2, 1, 2, 2), FatalError);
    EXPECT_THROW(Topology::superpod("bad", 2, 4, 0, 2), FatalError);
    EXPECT_THROW(Topology::superpod("bad", 2, 4, 2, 0), FatalError);
    EXPECT_NO_THROW(Topology::superpod("ok", 2, 2, 1, 1));
}

TEST(Superpod, FlatTopologiesStaySingleIsland)
{
    // Pre-superpod topologies keep the degenerate answers: one
    // island, every switch a crossbar, nothing cross-box.
    const Topology t = Topology::crossbar("xbar", 4, 2);
    EXPECT_EQ(t.numIslands(), 1);
    EXPECT_EQ(t.switchRole(4), SwitchRole::Crossbar);
    EXPECT_EQ(t.numSwitchesOfRole(SwitchRole::Crossbar), 2);
    EXPECT_EQ(t.numSwitchesOfRole(SwitchRole::Nic), 0);
    EXPECT_EQ(t.numSwitchesOfRole(SwitchRole::Spine), 0);
    EXPECT_EQ(t.island(0), 0);
    EXPECT_EQ(t.island(4), 0);
    EXPECT_FALSE(t.crossIsland(0, 3));
    EXPECT_THROW(t.switchRole(0), FatalError); // GPU, not a switch
    EXPECT_THROW(t.island(-1), FatalError);
}

TEST(SuperpodRoutes, IntraBoxNeverLeavesTheChassis)
{
    // Same-box traffic rides a plane of that box: two hops, no NIC,
    // no spine -- the premise that intra-box defenses cannot see
    // cross-box traffic and vice versa.
    const Topology t = Topology::superpod("pod", 3, 4, 2, 2);
    for (NodeId a = 0; a < 12; ++a) {
        for (NodeId b = 0; b < 12; ++b) {
            if (a == b || t.island(a) != t.island(b))
                continue;
            const auto &r = t.route(a, b);
            ASSERT_EQ(r.size(), 3u) << a << "->" << b;
            EXPECT_EQ(t.switchRole(r[1]), SwitchRole::Crossbar);
            EXPECT_EQ(t.island(r[1]), t.island(a));
        }
    }
}

TEST(SuperpodRoutes, CrossBoxRidesNicSpineNic)
{
    // Cross-box traffic is gpu -> own NIC -> spine -> peer NIC ->
    // gpu, four hops, striped over the spines by the endpoint sum
    // (the same tie-break crossbar planes use).
    const Topology t = Topology::superpod("pod", 3, 4, 2, 2);
    const NodeId first_nic = 18, first_spine = 30;
    for (NodeId a = 0; a < 12; ++a) {
        for (NodeId b = 0; b < 12; ++b) {
            if (a == b || t.island(a) == t.island(b))
                continue;
            const auto &r = t.route(a, b);
            ASSERT_EQ(r.size(), 5u) << a << "->" << b;
            EXPECT_EQ(r[1], first_nic + a);
            EXPECT_EQ(r[2], first_spine + (a + b) % 2);
            EXPECT_EQ(r[3], first_nic + b);
            EXPECT_EQ(t.hopCount(a, b), 4);
        }
    }
}

TEST(SuperpodRoutes, FullPodIsByteStableWithinBudget)
{
    // The dgx-superpod shape: 308 nodes, routes computed on demand
    // from the closed-form pod distance oracle -- construction stores
    // no path matrix at all. Budget: topology construction stays
    // under 2 s even in instrumented (ASan/Debug) builds; a release
    // build takes microseconds now that nothing is precomputed.
    const auto t0 = std::chrono::steady_clock::now();
    const Topology a = Topology::superpod("dgx-superpod", 8, 16, 6, 4);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_LT(ms, 2000) << "topology construction blew its budget";
    ASSERT_EQ(a.numNodes(), 308);
    ASSERT_EQ(a.numIslands(), 8);
    // Byte-stable: a second construction yields identical routes; and
    // every route is the exact reverse of its mirror. route() views
    // alias one thread-local scratch, so copy before the next call.
    const Topology b = Topology::superpod("dgx-superpod", 8, 16, 6, 4);
    for (NodeId x = 0; x < a.numNodes(); ++x) {
        for (NodeId y = 0; y < a.numNodes(); ++y) {
            const std::vector<NodeId> fwd = a.route(x, y).toVector();
            ASSERT_EQ(b.route(x, y), fwd) << x << "->" << y;
            const std::vector<NodeId> rev = a.route(y, x).toVector();
            ASSERT_EQ(fwd.size(), rev.size());
            for (std::size_t i = 0; i < fwd.size(); ++i)
                ASSERT_EQ(fwd[i], rev[rev.size() - 1 - i])
                    << x << "->" << y;
        }
    }
}

TEST(Fabric, PerSwitchParamsApplyToTheRightCrossbar)
{
    // Two planes with different crossbar transit costs: the striped
    // routes must charge each plane's own parameters.
    const Topology t = Topology::crossbar("xbar", 4, 2);
    LinkParams lp;
    lp.hopCycles = 100;
    SwitchParams fast;
    fast.crossbarCycles = 10;
    SwitchParams slow;
    slow.crossbarCycles = 90;
    const Fabric f(t, lp, std::vector<SwitchParams>{fast, slow});
    // 0->2 stripes onto sw0 (sum 2), 0->1 onto sw1 (sum 1).
    EXPECT_EQ(f.routeBaseCycles(0, 2), 2 * 100 + 10u);
    EXPECT_EQ(f.routeBaseCycles(0, 1), 2 * 100 + 90u);
    EXPECT_EQ(f.switchParamsOf(4).crossbarCycles, 10u);
    EXPECT_EQ(f.switchParamsOf(5).crossbarCycles, 90u);
    EXPECT_THROW(f.switchParamsOf(0), FatalError); // a GPU
    // One parameter set per switch, exactly.
    EXPECT_THROW(Fabric(t, lp, std::vector<SwitchParams>(3)),
                 FatalError);
    EXPECT_THROW(Fabric(t, lp, std::vector<SwitchParams>{}),
                 FatalError);
}

} // namespace
} // namespace gpubox::noc
