/**
 * @file
 * Route-scaling properties of the on-demand routing layer.
 *
 * The topology used to materialize an all-pairs path matrix at
 * construction; routes are now replayed on demand from the distance
 * oracle (BFS table on flat graphs, closed form on superpods). These
 * tests pin the contract that made the swap safe:
 *
 *  - byte identity: on every registered platform, route() returns
 *    exactly the path the legacy materializer stored, including the
 *    plane/spine striping tie-break, reverse symmetry and
 *    routeString() rendering (an independent BFS reference
 *    reimplements the legacy algorithm here);
 *  - storage: routeTableBytes() scales with nodes + links (plus an
 *    n^2 int16 distance table on flat graphs), never with n^2 paths,
 *    and self-routes cost nothing;
 *  - scale: the 2440-node dgx-gigapod constructs inside the CI
 *    budget and its route storage sits >= 50x below the extrapolated
 *    legacy footprint;
 *  - the cross-box port channel still decodes error-free across the
 *    gigapod's spine, end to end.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "attack/covert/port_channel.hh"
#include "noc/topology.hh"
#include "rt/platform.hh"
#include "rt/runtime.hh"
#include "util/log.hh"

namespace gpubox::noc
{
namespace
{

/**
 * Independent reimplementation of the legacy route construction: an
 * all-pairs BFS distance table plus the greedy lowest-id /
 * all-switch-striping walk, exactly as Topology::buildRouteTables()
 * materialized it before routes became on-demand. Deliberately
 * shares no code with src/noc.
 */
class LegacyReference
{
  public:
    explicit LegacyReference(const Topology &t)
        : topo_(t), n_(t.numNodes()),
          adj_(static_cast<std::size_t>(n_)),
          dist_(static_cast<std::size_t>(n_) * n_, -1)
    {
        for (const auto &[a, b] : t.links()) {
            adj_[static_cast<std::size_t>(a)].push_back(b);
            adj_[static_cast<std::size_t>(b)].push_back(a);
        }
        for (auto &peers : adj_)
            std::sort(peers.begin(), peers.end());
        for (NodeId src = 0; src < n_; ++src) {
            int *d = &dist_[static_cast<std::size_t>(src) * n_];
            d[src] = 0;
            std::deque<NodeId> frontier{src};
            while (!frontier.empty()) {
                const NodeId at = frontier.front();
                frontier.pop_front();
                for (NodeId next : adj_[static_cast<std::size_t>(at)]) {
                    if (d[next] == -1) {
                        d[next] = d[at] + 1;
                        frontier.push_back(next);
                    }
                }
            }
        }
    }

    int
    dist(NodeId a, NodeId b) const
    {
        return dist_[static_cast<std::size_t>(a) * n_ + b];
    }

    /** The path the legacy table stored for a -> b. */
    std::vector<NodeId>
    route(NodeId a, NodeId b) const
    {
        if (a == b)
            return {a};
        const NodeId lo = std::min(a, b), hi = std::max(a, b);
        if (dist(lo, hi) < 0)
            return {};
        std::vector<NodeId> path{lo};
        std::vector<NodeId> candidates;
        NodeId at = lo;
        while (at != hi) {
            const int remaining = dist(at, hi);
            candidates.clear();
            for (NodeId next : adj_[static_cast<std::size_t>(at)])
                if (dist(next, hi) == remaining - 1)
                    candidates.push_back(next); // ascending ids
            bool all_switches = candidates.size() > 1;
            for (NodeId c : candidates)
                all_switches = all_switches && topo_.isSwitch(c);
            const std::size_t pick =
                all_switches ? static_cast<std::size_t>(lo + hi) %
                                   candidates.size()
                             : 0;
            at = candidates[pick];
            path.push_back(at);
        }
        if (a > b)
            std::reverse(path.begin(), path.end());
        return path;
    }

  private:
    const Topology &topo_;
    int n_;
    std::vector<std::vector<NodeId>> adj_;
    std::vector<int> dist_;
};

std::string
renderPath(const Topology &t, const std::vector<NodeId> &path)
{
    if (path.empty())
        return "(none)";
    std::string out;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i)
            out += " -> ";
        out += t.nodeName(path[i]);
    }
    return out;
}

/** Every property the legacy table guaranteed, for one pair. */
void
checkPair(const Topology &t, const LegacyReference &ref, NodeId a,
          NodeId b)
{
    const std::vector<NodeId> expect = ref.route(a, b);
    const std::vector<NodeId> got = t.route(a, b).toVector();
    ASSERT_EQ(got, expect) << t.name() << ": " << a << "->" << b;
    // Reverse symmetry, against the independently walked mirror.
    std::vector<NodeId> rev = ref.route(b, a);
    std::reverse(rev.begin(), rev.end());
    ASSERT_EQ(got, rev) << t.name() << ": " << a << "->" << b;
    // Minimality against the reference BFS distances.
    const int d = ref.dist(a, b);
    if (d < 0)
        ASSERT_TRUE(got.empty());
    else
        ASSERT_EQ(static_cast<int>(got.size()), d + 1);
    ASSERT_EQ(t.hopCount(a, b), d);
    // routeString renders the same bytes.
    ASSERT_EQ(t.routeString(a, b), renderPath(t, expect))
        << t.name() << ": " << a << "->" << b;
}

TEST(RouteScaling, OnDemandRoutesMatchLegacyOnEveryPlatform)
{
    // Exhaustive all-pairs byte identity on every pre-gigapod
    // platform (largest: the 308-node dgx-superpod).
    for (const rt::Platform &p : rt::allPlatforms()) {
        if (p.name == "dgx-gigapod")
            continue; // sampled below: 2440^2 pairs is a soak test
        const Topology &t = p.topology;
        const LegacyReference ref(t);
        for (NodeId a = 0; a < t.numNodes(); ++a)
            for (NodeId b = 0; b < t.numNodes(); ++b)
                checkPair(t, ref, a, b);
    }
}

TEST(RouteScaling, GigapodSampledRoutesMatchLegacy)
{
    // The gigapod uses the closed-form pod distance oracle instead of
    // a BFS table; sample every node-kind pairing (GPU/plane/NIC/
    // spine, same-box and cross-box, both id orders) plus a coarse
    // stride across the whole id space.
    const Topology &t =
        rt::platformByName("dgx-gigapod").topology;
    ASSERT_EQ(t.numNodes(), 2440);
    const LegacyReference ref(t);
    std::vector<NodeId> sample{
        0,    1,    15,   16,   17,   511,  1022, 1023, // GPUs
        1024, 1029, 1030, 1100, 1406, 1407,             // planes
        1408, 1409, 1423, 1424, 2000, 2431,             // NICs
        2432, 2435, 2439,                               // spines
    };
    for (NodeId v = 37; v < t.numNodes(); v += 241)
        sample.push_back(v);
    for (NodeId a : sample)
        for (NodeId b : sample)
            checkPair(t, ref, a, b);
}

TEST(RouteScaling, StorageIsLinearNotQuadratic)
{
    // Flat graphs keep an n^2 *int16 distance* table (cheap, needed
    // by the BFS oracle) but no path matrix; superpods store neither.
    // Self-routes are implicit everywhere. The bounds below leave
    // headroom for the CSR adjacency and allocator slack but are
    // orders of magnitude under any materialized path matrix.
    const Topology &dgx1 = rt::platformByName("dgx1-p100").topology;
    // 8 nodes: 128-byte distance table + a few hundred bytes of CSR.
    EXPECT_LT(dgx1.routeTableBytes(), 2048u);
    EXPECT_FALSE(dgx1.usesClosedFormDistances());

    const Topology &pod = rt::platformByName("dgx-superpod").topology;
    EXPECT_TRUE(pod.usesClosedFormDistances());
    // 308 nodes, 1408 links: CSR only. The legacy path matrix alone
    // was >= 308^2 * 24 bytes of vector headers (~2.2 MB).
    EXPECT_LT(pod.routeTableBytes(), 100u * 1024);

    // Self-routes cost nothing: a topology with more nodes but the
    // same link count must not pay per-node-squared for them.
    const Topology small = Topology::custom("s", 4, {{0, 1}, {2, 3}});
    const Topology big =
        Topology::custom("b", 64, {{0, 1}, {2, 3}});
    // Only the distance table (n^2 int16) and CSR offsets (n+1 ints)
    // may grow; 64 nodes must stay under 16 KB total.
    EXPECT_LT(big.routeTableBytes(), 16u * 1024);
    EXPECT_GT(big.routeTableBytes(), small.routeTableBytes());
}

TEST(RouteScaling, GigapodConstructsWithinBudgetAndMemoryCeiling)
{
    // Tentpole acceptance: 64 boxes x 16 GPUs constructs inside the
    // CI budget (a release build takes ~2 ms; 2 s leaves room for
    // ASan/Debug), and route storage sits >= 50x below the
    // extrapolated legacy footprint.
    const auto t0 = std::chrono::steady_clock::now();
    const Topology t =
        Topology::superpod("dgx-gigapod", 64, 16, 6, 8);
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(ms, 2000) << "gigapod construction blew its budget";
    ASSERT_EQ(t.numNodes(), 2440);
    ASSERT_EQ(t.numGpus(), 1024);
    ASSERT_EQ(t.links().size(), 15360u);
    ASSERT_EQ(t.numIslands(), 64);

    // Extrapolate what the legacy layout would hold: an n^2 int
    // distance table plus an n^2 path matrix (a vector header per
    // pair plus the path nodes themselves, mean length sampled from
    // real routes).
    const std::size_t n = static_cast<std::size_t>(t.numNodes());
    std::size_t path_nodes = 0, sampled = 0;
    for (NodeId a = 0; a < t.numNodes(); a += 173) {
        for (NodeId b = 0; b < t.numNodes(); b += 173) {
            path_nodes += t.route(a, b).size();
            ++sampled;
        }
    }
    const double mean_len =
        static_cast<double>(path_nodes) / static_cast<double>(sampled);
    const double legacy_bytes =
        static_cast<double>(n) * n *
        (sizeof(int)                         // dist entry
         + sizeof(std::vector<NodeId>)       // route vector header
         + mean_len * sizeof(NodeId));       // route payload
    const double now_bytes =
        static_cast<double>(t.routeTableBytes());
    EXPECT_GE(legacy_bytes, 50.0 * now_bytes)
        << "route storage only " << legacy_bytes / now_bytes
        << "x below the extrapolated legacy footprint";
}

TEST(RouteScaling, GigapodCrossBoxChannelDecodesCleanly)
{
    // End to end on the 1024-GPU pod: boot a runtime (devices
    // materialize lazily, so only the four participants are built),
    // find a four-chassis interfering pair and push bits across the
    // shared spine at zero error.
    rt::Runtime rt(
        rt::platformByName("dgx-gigapod").systemConfig(17));
    const Topology &topo = rt.topology();
    const attack::covert::GpuPair tpair{0, 513}; // box 0 -> box 32
    ASSERT_TRUE(topo.crossIsland(tpair.src, tpair.dst));
    attack::covert::GpuPair spair;
    ASSERT_TRUE(attack::covert::PortChannel::findCrossBoxInterferingPair(
        rt, tpair, &spair));
    EXPECT_NE(topo.island(spair.src), topo.island(spair.dst));
    EXPECT_NE(topo.island(spair.src), topo.island(tpair.src));
    EXPECT_NE(topo.island(spair.dst), topo.island(tpair.dst));

    rt::Process &trojan = rt.createProcess("trojan");
    rt::Process &spy = rt.createProcess("spy");
    attack::covert::PortChannel channel(rt, trojan, spy, tpair, spair);
    // The shared medium must be an RDMA spine: the pairs sit in four
    // different chassis, nothing intra-box can be common.
    EXPECT_NE(channel.sharedResourceString().find("spine"),
              std::string::npos);

    Rng rng(0x61);
    std::vector<std::uint8_t> payload(64);
    for (auto &b : payload)
        b = rng.chance(0.5) ? 1 : 0;
    std::vector<std::uint8_t> rx;
    const auto stats = channel.transmit(payload, rx);
    EXPECT_EQ(stats.bitErrors, 0u);
    EXPECT_EQ(rx, payload);
    EXPECT_GT(stats.bandwidthMbitPerSec, 0.0);
}

} // namespace
} // namespace gpubox::noc
