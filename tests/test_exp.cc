/**
 * @file
 * Tests for the experiment subsystem: scenario-matrix expansion,
 * deterministic parallel execution (byte-identical CSV for 1, 2 and 8
 * worker threads), per-scenario RNG stream stability and failure
 * isolation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/experiment_runner.hh"
#include "exp/registry.hh"
#include "exp/scenario.hh"
#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"

namespace gpubox
{
namespace
{

exp::ScenarioMatrix::Mutator
noop()
{
    return [](exp::Scenario &) {};
}

TEST(ScenarioMatrix, ExpandsCartesianProductRowMajor)
{
    exp::Scenario base;
    base.name = "base";
    auto scenarios =
        exp::ScenarioMatrix(base)
            .axis("policy", {{"lru", noop()}, {"random", noop()}})
            .axis("sets",
                  {{"1",
                    [](exp::Scenario &sc) { sc.attack.covertSets = 1; }},
                   {"2",
                    [](exp::Scenario &sc) { sc.attack.covertSets = 2; }},
                   {"4",
                    [](exp::Scenario &sc) { sc.attack.covertSets = 4; }}})
            .expand();

    ASSERT_EQ(scenarios.size(), 6u);
    // Row-major: the last axis varies fastest.
    EXPECT_EQ(scenarios[0].name, "base/policy=lru/sets=1");
    EXPECT_EQ(scenarios[1].name, "base/policy=lru/sets=2");
    EXPECT_EQ(scenarios[2].name, "base/policy=lru/sets=4");
    EXPECT_EQ(scenarios[3].name, "base/policy=random/sets=1");
    EXPECT_EQ(scenarios[5].name, "base/policy=random/sets=4");
    // Mutators applied and labels recorded in axis order.
    EXPECT_EQ(scenarios[5].attack.covertSets, 4u);
    ASSERT_EQ(scenarios[5].params.size(), 2u);
    EXPECT_EQ(scenarios[5].params[0].first, "policy");
    EXPECT_EQ(scenarios[5].params[0].second, "random");
    EXPECT_EQ(scenarios[5].paramOr("sets"), "4");
    EXPECT_EQ(scenarios[5].paramOr("absent", "dflt"), "dflt");
}

TEST(ScenarioMatrix, SeedsAxisSetsBothSeeds)
{
    exp::Scenario base;
    base.name = "s";
    auto scenarios =
        exp::ScenarioMatrix(base).seeds({11, 22}).expand();
    ASSERT_EQ(scenarios.size(), 2u);
    EXPECT_EQ(scenarios[0].seed, 11u);
    EXPECT_EQ(scenarios[0].system.seed, 11u);
    EXPECT_EQ(scenarios[1].seed, 22u);
    EXPECT_EQ(scenarios[1].system.seed, 22u);
    EXPECT_EQ(scenarios[1].name, "s/seed=22");
}

TEST(ScenarioMatrix, SizeMatchesExpansion)
{
    exp::Scenario base;
    exp::ScenarioMatrix m(base);
    EXPECT_EQ(m.size(), 1u);
    m.axis("a", {{"x", noop()}, {"y", noop()}}).seeds({1, 2, 3});
    EXPECT_EQ(m.size(), 6u);
    EXPECT_EQ(m.expand().size(), 6u);
}

TEST(ScenarioMatrix, EmptyAxisIsFatal)
{
    exp::Scenario base;
    EXPECT_THROW(exp::ScenarioMatrix(base).axis("empty", {}),
                 FatalError);
}

/**
 * A scenario function doing real simulation work: run a small kernel
 * that streams through device memory, then record sim metrics and a
 * few draws from the scenario RNG stream.
 */
void
simScenario(const exp::Scenario &sc, exp::RunContext &ctx)
{
    setLogEnabled(false);
    rt::Runtime rt(sc.system);
    rt::Process &p = rt.createProcess("worker");
    const std::uint32_t line = sc.system.device.l2.lineBytes;
    const int n = 64;
    const VAddr buf = rt.deviceMalloc(
        p, 0, static_cast<std::uint64_t>(n) * line);

    std::uint64_t latency_sum = 0;
    auto kernel = [&](rt::BlockCtx &bctx) -> sim::Task {
        for (int i = 0; i < n; ++i) {
            const Cycles t0 = bctx.actor().now();
            co_await bctx.ldcg64(buf + i * line);
            latency_sum += bctx.actor().now() - t0;
        }
    };
    gpu::KernelConfig kcfg;
    rt::Stream &stream = rt.stream(p, 0);
    stream.launch(kcfg, kernel);
    rt.sync(stream);

    const auto metrics = rt.metrics();
    ctx.row(sc.name, sc.seed, latency_sum, metrics.engine.steps,
            metrics.engine.now, ctx.rng().next(), ctx.rng().next());
    ctx.note("sim done");
}

std::vector<exp::Scenario>
determinismScenarios()
{
    exp::Scenario base;
    base.name = "det";
    base.system = test::smallConfig();
    return exp::ScenarioMatrix(base)
        .seeds({5, 6, 7})
        .axis("rep", {{"a", noop()}, {"b", noop()}})
        .expand();
}

/**
 * A multi-stream overlap scenario: two victim processes staged behind
 * an attacker's priming event, probing overlapped on three streams --
 * the N-victims-x-M-attackers shape the stream API unlocks. Rows
 * derive purely from simulated quantities.
 */
void
multiStreamScenario(const exp::Scenario &sc, exp::RunContext &ctx)
{
    setLogEnabled(false);
    rt::Runtime rt(sc.system);
    rt::Process &spy = rt.createProcess("spy");
    rt::Process &va = rt.createProcess("victimA");
    rt::Process &vb = rt.createProcess("victimB");

    const std::uint32_t line = sc.system.device.l2.lineBytes;
    const int n = 32;
    const VAddr spy_buf = rt.deviceMalloc(spy, 0, n * line);
    const VAddr a_buf = rt.deviceMalloc(va, 0, n * line);
    const VAddr b_buf = rt.deviceMalloc(vb, 0, n * line);

    rt::Stream &spy_s = rt.createStream(spy, 0, "spy");
    rt::Stream &a_s = rt.createStream(va, 0, "victimA");
    rt::Stream &b_s = rt.createStream(vb, 0, "victimB");
    rt::Event &primed = rt.createEvent("primed");
    rt::Event &done_a = rt.createEvent("done-a");
    rt::Event &done_b = rt.createEvent("done-b");

    std::uint64_t spy_lat = 0;
    gpu::KernelConfig cfg;
    spy_s.launch(cfg, [&](rt::BlockCtx &bctx) -> sim::Task {
        for (int i = 0; i < n; ++i)
            co_await bctx.ldcg64(spy_buf + i * line);
    });
    spy_s.record(primed);
    spy_s.launch(cfg, [&](rt::BlockCtx &bctx) -> sim::Task {
        for (int r = 0; r < 4; ++r) {
            for (int i = 0; i < n; ++i) {
                const Cycles t0 = bctx.actor().now();
                co_await bctx.ldcg64(spy_buf + i * line);
                spy_lat += bctx.actor().now() - t0;
            }
        }
    });

    auto victim = [n, line](VAddr buf) {
        return [buf, n, line](rt::BlockCtx &bctx) -> sim::Task {
            for (int r = 0; r < 4; ++r)
                for (int i = 0; i < n; ++i)
                    co_await bctx.ld32(buf + i * line);
        };
    };
    a_s.wait(primed);
    a_s.launch(cfg, victim(a_buf));
    a_s.record(done_a);
    b_s.wait(primed);
    b_s.launch(cfg, victim(b_buf));
    b_s.record(done_b);

    rt.syncAll();

    const auto metrics = rt.metrics();
    ctx.row(sc.name, sc.seed, primed.when(), done_a.when(),
            done_b.when(), spy_lat, metrics.engine.steps,
            metrics.engine.now);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ExperimentRunner, CsvByteIdenticalAcrossThreadCounts)
{
    const auto scenarios = determinismScenarios();
    const std::vector<std::string> header = {
        "name", "seed", "latency_sum", "steps", "cycles", "r0", "r1"};

    std::vector<std::string> contents;
    for (unsigned threads : {1u, 2u, 8u}) {
        exp::ExperimentRunner runner({threads, /*progress=*/false});
        EXPECT_EQ(runner.threads(), threads);
        auto report = runner.run(scenarios, simScenario);
        ASSERT_EQ(report.results.size(), scenarios.size());
        EXPECT_EQ(report.failures(), 0u);

        const std::string path =
            "test_exp_det_" + std::to_string(threads) + ".csv";
        report.writeCsv(path, header);
        contents.push_back(slurp(path));
        std::remove(path.c_str());
    }
    ASSERT_EQ(contents.size(), 3u);
    EXPECT_FALSE(contents[0].empty());
    EXPECT_EQ(contents[0], contents[1]);
    EXPECT_EQ(contents[0], contents[2]);
    // Header + one row per scenario.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(contents[0].begin(), contents[0].end(),
                             '\n')),
              scenarios.size() + 1);
}

TEST(ExperimentRunner, MultiStreamScenariosDeterministicAcrossThreads)
{
    // The acceptance bar for the stream redesign: scenario sweeps that
    // overlap multiple streams/events per runtime still produce
    // byte-identical CSVs for any worker count.
    const auto scenarios = determinismScenarios();
    const std::vector<std::string> header = {
        "name",    "seed",    "primed", "done_a",
        "done_b",  "spy_lat", "steps",  "cycles"};

    std::vector<std::string> contents;
    for (unsigned threads : {1u, 2u, 8u}) {
        exp::ExperimentRunner runner({threads, /*progress=*/false});
        auto report = runner.run(scenarios, multiStreamScenario);
        EXPECT_EQ(report.failures(), 0u);
        const std::string path =
            "test_exp_streams_" + std::to_string(threads) + ".csv";
        report.writeCsv(path, header);
        contents.push_back(slurp(path));
        std::remove(path.c_str());
    }
    ASSERT_EQ(contents.size(), 3u);
    EXPECT_FALSE(contents[0].empty());
    EXPECT_EQ(contents[0], contents[1]);
    EXPECT_EQ(contents[0], contents[2]);
}

TEST(ExperimentRunner, RngStreamStableUnderReordering)
{
    // The per-scenario stream is keyed by seed + name, not position:
    // running a subset of the sweep reproduces the same rows.
    const auto all = determinismScenarios();
    std::vector<exp::Scenario> subset = {all[3], all[1]};

    exp::ExperimentRunner runner({2, /*progress=*/false});
    auto full = runner.run(all, simScenario);
    auto part = runner.run(subset, simScenario);

    ASSERT_EQ(part.results.size(), 2u);
    EXPECT_EQ(part.results[0].rows, full.results[3].rows);
    EXPECT_EQ(part.results[1].rows, full.results[1].rows);
}

TEST(ExperimentRunner, FailuresAreIsolatedAndOrdered)
{
    exp::Scenario base;
    base.name = "f";
    auto scenarios = exp::ScenarioMatrix(base)
                         .axis("k", {{"ok1", noop()},
                                     {"boom", noop()},
                                     {"ok2", noop()}})
                         .expand();

    exp::ExperimentRunner runner({8, /*progress=*/false});
    auto report = runner.run(
        scenarios, [](const exp::Scenario &sc, exp::RunContext &ctx) {
            if (sc.paramOr("k") == "boom")
                fatal("intentional failure");
            ctx.row(sc.paramOr("k"), 1);
        });

    ASSERT_EQ(report.results.size(), 3u);
    EXPECT_EQ(report.failures(), 1u);
    EXPECT_TRUE(report.results[0].ok);
    EXPECT_FALSE(report.results[1].ok);
    EXPECT_EQ(report.results[1].error, "intentional failure");
    EXPECT_TRUE(report.results[1].rows.empty());
    EXPECT_TRUE(report.results[2].ok);
    // allRows keeps scenario order and skips nothing else.
    auto rows = report.allRows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], "ok1");
    EXPECT_EQ(rows[1][0], "ok2");
}

TEST(ExperimentRunner, TextsAndMetricsAreCollected)
{
    exp::Scenario base;
    base.name = "m";
    auto scenarios = exp::ScenarioMatrix(base)
                         .axis("k", {{"a", noop()}, {"b", noop()}})
                         .expand();

    exp::ExperimentRunner runner({2, /*progress=*/false});
    auto report = runner.run(
        scenarios, [](const exp::Scenario &sc, exp::RunContext &ctx) {
            ctx.text("block " + sc.paramOr("k") + "\n");
            ctx.metric("shared", 2.0);
            ctx.metric("only_" + sc.paramOr("k"), 1.0);
        });

    ASSERT_EQ(report.results.size(), 2u);
    EXPECT_EQ(report.results[0].texts,
              std::vector<std::string>{"block a\n"});
    EXPECT_EQ(report.results[1].texts,
              std::vector<std::string>{"block b\n"});
    // Sums are taken across scenarios; keys keep first-seen order.
    EXPECT_DOUBLE_EQ(report.metricSum("shared"), 4.0);
    EXPECT_DOUBLE_EQ(report.metricSum("only_a"), 1.0);
    EXPECT_DOUBLE_EQ(report.metricSum("absent"), 0.0);
    auto agg = report.aggregateMetrics();
    ASSERT_EQ(agg.size(), 3u);
    EXPECT_EQ(agg[0].first, "shared");
    EXPECT_DOUBLE_EQ(agg[0].second, 4.0);
    EXPECT_EQ(agg[1].first, "only_a");
    EXPECT_EQ(agg[2].first, "only_b");
}

/** A tiny registrable bench doing real simulation work. */
exp::BenchSpec
simBenchSpec(const std::string &name)
{
    exp::BenchSpec spec;
    spec.name = name;
    spec.description = "synthetic " + name;
    spec.csvHeader = {"name", "seed",   "latency_sum", "steps",
                      "cycles", "r0", "r1"};
    spec.scenarios = [name](const exp::ScenarioDefaults &d) {
        exp::Scenario base;
        base.name = name;
        base.seed = d.seed;
        base.system = test::smallConfig(d.seed);
        return exp::ScenarioMatrix(base)
            .axis("rep", {{"a", noop()}, {"b", noop()}})
            .expand();
    };
    spec.run = simScenario;
    spec.render = [](const exp::Report &report, std::FILE *out) {
        std::fprintf(out, "  rows: %zu\n", report.allRows().size());
    };
    return spec;
}

TEST(BenchRegistry, AddFindListAndDuplicates)
{
    exp::BenchRegistry registry;
    EXPECT_EQ(registry.size(), 0u);
    registry.add(simBenchSpec("alpha"));
    registry.add(simBenchSpec("beta"));

    ASSERT_NE(registry.find("alpha"), nullptr);
    EXPECT_EQ(registry.find("alpha")->name, "alpha");
    EXPECT_EQ(registry.find("nope"), nullptr);

    auto all = registry.list();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0]->name, "alpha");
    EXPECT_EQ(all[1]->name, "beta");

    EXPECT_THROW(registry.add(simBenchSpec("alpha")), FatalError);
    exp::BenchSpec unnamed = simBenchSpec("x");
    unnamed.name.clear();
    EXPECT_THROW(registry.add(std::move(unnamed)), FatalError);
    exp::BenchSpec norun = simBenchSpec("y");
    norun.run = nullptr;
    EXPECT_THROW(registry.add(std::move(norun)), FatalError);
}

TEST(BenchRegistry, GlobalInstanceIsASingleton)
{
    // The suite itself registers from bench/suite (not linked into
    // the tests; its count is pinned by the bench_registry_count
    // ctest entry); here only the instance identity is checked.
    auto &a = exp::BenchRegistry::instance();
    auto &b = exp::BenchRegistry::instance();
    EXPECT_EQ(&a, &b);
}

TEST(BenchRegistry, OnlyFilterSelectsExactPrefixAndReportsUnknown)
{
    exp::BenchRegistry registry;
    registry.add(simBenchSpec("fig09_covert_bandwidth"));
    registry.add(simBenchSpec("fig10_covert_message"));
    registry.add(simBenchSpec("perf_sim"));

    std::string error;
    // Empty selection = everything, registration order.
    auto all = exp::selectBenches(registry, "", &error);
    EXPECT_TRUE(error.empty());
    ASSERT_EQ(all.size(), 3u);

    // Exact names, comma separated, deduplicated.
    auto two = exp::selectBenches(
        registry, "perf_sim,fig10_covert_message,perf_sim", &error);
    EXPECT_TRUE(error.empty());
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0]->name, "perf_sim");
    EXPECT_EQ(two[1]->name, "fig10_covert_message");

    // Unique prefix resolves; ambiguous or unknown prefixes error.
    auto pre = exp::selectBenches(registry, "fig09", &error);
    EXPECT_TRUE(error.empty());
    ASSERT_EQ(pre.size(), 1u);
    EXPECT_EQ(pre[0]->name, "fig09_covert_bandwidth");

    auto ambiguous = exp::selectBenches(registry, "fig", &error);
    EXPECT_TRUE(ambiguous.empty());
    EXPECT_NE(error.find("ambiguous"), std::string::npos);

    auto unknown = exp::selectBenches(registry, "fig99", &error);
    EXPECT_TRUE(unknown.empty());
    EXPECT_NE(error.find("unknown"), std::string::npos);
}

/** Drain a tmpfile-backed stream into a string. */
std::string
slurpStream(std::FILE *f)
{
    std::fflush(f);
    std::fseek(f, 0, SEEK_SET);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    return out;
}

TEST(BenchRegistry, TwoBenchRunIsDeterministicAcrossThreadCounts)
{
    setLogEnabled(false);
    exp::BenchRegistry registry;
    registry.add(simBenchSpec("det_a"));
    registry.add(simBenchSpec("det_b"));

    std::string stdout_ref, csv_a_ref, csv_b_ref;
    for (unsigned threads : {1u, 8u}) {
        exp::BenchOptions opt;
        opt.seed = 7;
        opt.threads = threads;
        opt.outDir = ".";
        opt.progress = false;

        std::FILE *out = std::tmpfile();
        ASSERT_NE(out, nullptr);
        std::vector<exp::BenchRunSummary> summaries;
        for (const exp::BenchSpec *spec : registry.list())
            summaries.push_back(exp::runBench(*spec, opt, out));

        ASSERT_EQ(summaries.size(), 2u);
        for (const auto &s : summaries) {
            EXPECT_EQ(s.failures, 0u);
            EXPECT_EQ(s.scenarios, 2u);
            EXPECT_EQ(s.rows, 2u);
        }

        const std::string text = slurpStream(out);
        std::fclose(out);
        const std::string csv_a = slurp("det_a.csv");
        const std::string csv_b = slurp("det_b.csv");
        EXPECT_FALSE(text.empty());
        EXPECT_FALSE(csv_a.empty());
        if (threads == 1) {
            stdout_ref = text;
            csv_a_ref = csv_a;
            csv_b_ref = csv_b;
        } else {
            // Byte-identical stdout and CSVs for any --threads.
            EXPECT_EQ(text, stdout_ref);
            EXPECT_EQ(csv_a, csv_a_ref);
            EXPECT_EQ(csv_b, csv_b_ref);
        }
    }
    std::remove("det_a.csv");
    std::remove("det_b.csv");
}

TEST(BenchRegistry, ResultsJsonIsPopulated)
{
    setLogEnabled(false);
    exp::BenchRegistry registry;
    registry.add(simBenchSpec("json_bench"));

    exp::BenchOptions opt;
    opt.seed = 11;
    opt.threads = 2;
    opt.progress = false;

    std::FILE *out = std::tmpfile();
    ASSERT_NE(out, nullptr);
    auto summary =
        exp::runBench(*registry.find("json_bench"), opt, out);
    std::fclose(out);

    const std::string path = "test_exp_results.json";
    exp::writeResultsJson(path, opt, 1.5, {summary});
    const std::string js = slurp(path);
    std::remove(path.c_str());
    std::remove("json_bench.csv");

    EXPECT_NE(js.find("\"schema\": \"gpubox-bench-results/v5\""),
              std::string::npos);
    // v5 records the run-level shard override (0 = scenario default).
    EXPECT_NE(js.find("\"shards\": 0"), std::string::npos);
    // Profile objects are opt-in (--profile); the default sink stays
    // compact.
    EXPECT_EQ(js.find("\"profile\""), std::string::npos);
    EXPECT_EQ(js.find("\"calibration_cache\""), std::string::npos);
    EXPECT_NE(js.find("\"seed\": 11"), std::string::npos);
    // No --platform override: the run records the default marker and
    // each bench entry lists the platforms its scenarios used.
    EXPECT_NE(js.find("\"platform\": \"default\""), std::string::npos);
    EXPECT_NE(js.find("\"platforms\": [\"dgx1-p100\"]"),
              std::string::npos);
    EXPECT_NE(js.find("\"name\": \"json_bench\""), std::string::npos);
    EXPECT_NE(js.find("\"scenarios\": 2"), std::string::npos);
    EXPECT_NE(js.find("\"failures\": 0"), std::string::npos);
    // The calibration artifact covers every platform the run touched:
    // cluster centers + thresholds, keyed by platform name.
    EXPECT_NE(js.find("\"calibration\": {"), std::string::npos);
    EXPECT_NE(js.find("\"dgx1-p100\": {\"local_gpu\": 1, "
                      "\"remote_gpu\": 0, \"centers\": {\"local_hit\": "),
              std::string::npos);
    EXPECT_NE(js.find("\"remote_boundary\": "), std::string::npos);
}

TEST(BenchRegistry, ProfileFlagEmitsEngineCounters)
{
    setLogEnabled(false);
    exp::BenchRegistry registry;
    registry.add(simBenchSpec("profile_bench"));

    exp::BenchOptions opt;
    opt.seed = 11;
    opt.threads = 2;
    opt.progress = false;
    opt.profile = true;

    std::FILE *out = std::tmpfile();
    ASSERT_NE(out, nullptr);
    auto summary =
        exp::runBench(*registry.find("profile_bench"), opt, out);
    std::fclose(out);
    std::remove("profile_bench.csv");

    // The merged profile reflects real engine activity: one engine
    // per scenario runtime, nonzero steps and spawned actors.
    EXPECT_GE(summary.profile.engines, summary.scenarios);
    EXPECT_GT(summary.profile.steps, 0u);
    EXPECT_GT(summary.profile.spawned, 0u);
    EXPECT_GT(summary.profile.arenaBytes, 0u);

    const std::string path = "test_exp_profile_results.json";
    exp::writeResultsJson(path, opt, 1.5, {summary});
    const std::string js = slurp(path);
    std::remove(path.c_str());

    EXPECT_NE(js.find("\"profile\": {\"steps\": "),
              std::string::npos);
    EXPECT_NE(js.find("\"arena_bytes\": "), std::string::npos);
    EXPECT_NE(js.find("\"calibration_cache\": {\"hits\": "),
              std::string::npos);
}

TEST(ExperimentRunner, ProfileIdenticalAcrossThreadCounts)
{
    // Per-scenario engine profiles are simulated quantities: the same
    // scenario must report the same counters no matter which worker
    // thread executed it or how many workers ran the sweep.
    const auto scenarios = determinismScenarios();

    std::vector<std::vector<sim::EngineProfile>> profiles;
    for (unsigned threads : {1u, 2u, 8u}) {
        exp::ExperimentRunner runner({threads, /*progress=*/false});
        auto report = runner.run(scenarios, simScenario);
        EXPECT_EQ(report.failures(), 0u);
        std::vector<sim::EngineProfile> per_run;
        for (const auto &res : report.results) {
            EXPECT_GT(res.profile.steps, 0u) << res.name;
            EXPECT_EQ(res.profile.engines, 1u) << res.name;
            per_run.push_back(res.profile);
        }
        profiles.push_back(std::move(per_run));
    }
    ASSERT_EQ(profiles.size(), 3u);
    EXPECT_EQ(profiles[0], profiles[1]);
    EXPECT_EQ(profiles[0], profiles[2]);
}

} // namespace
} // namespace gpubox
