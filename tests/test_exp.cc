/**
 * @file
 * Tests for the experiment subsystem: scenario-matrix expansion,
 * deterministic parallel execution (byte-identical CSV for 1, 2 and 8
 * worker threads), per-scenario RNG stream stability and failure
 * isolation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/experiment_runner.hh"
#include "exp/scenario.hh"
#include "rt/runtime.hh"
#include "test_common.hh"
#include "util/log.hh"

namespace gpubox
{
namespace
{

exp::ScenarioMatrix::Mutator
noop()
{
    return [](exp::Scenario &) {};
}

TEST(ScenarioMatrix, ExpandsCartesianProductRowMajor)
{
    exp::Scenario base;
    base.name = "base";
    auto scenarios =
        exp::ScenarioMatrix(base)
            .axis("policy", {{"lru", noop()}, {"random", noop()}})
            .axis("sets",
                  {{"1",
                    [](exp::Scenario &sc) { sc.attack.covertSets = 1; }},
                   {"2",
                    [](exp::Scenario &sc) { sc.attack.covertSets = 2; }},
                   {"4",
                    [](exp::Scenario &sc) { sc.attack.covertSets = 4; }}})
            .expand();

    ASSERT_EQ(scenarios.size(), 6u);
    // Row-major: the last axis varies fastest.
    EXPECT_EQ(scenarios[0].name, "base/policy=lru/sets=1");
    EXPECT_EQ(scenarios[1].name, "base/policy=lru/sets=2");
    EXPECT_EQ(scenarios[2].name, "base/policy=lru/sets=4");
    EXPECT_EQ(scenarios[3].name, "base/policy=random/sets=1");
    EXPECT_EQ(scenarios[5].name, "base/policy=random/sets=4");
    // Mutators applied and labels recorded in axis order.
    EXPECT_EQ(scenarios[5].attack.covertSets, 4u);
    ASSERT_EQ(scenarios[5].params.size(), 2u);
    EXPECT_EQ(scenarios[5].params[0].first, "policy");
    EXPECT_EQ(scenarios[5].params[0].second, "random");
    EXPECT_EQ(scenarios[5].paramOr("sets"), "4");
    EXPECT_EQ(scenarios[5].paramOr("absent", "dflt"), "dflt");
}

TEST(ScenarioMatrix, SeedsAxisSetsBothSeeds)
{
    exp::Scenario base;
    base.name = "s";
    auto scenarios =
        exp::ScenarioMatrix(base).seeds({11, 22}).expand();
    ASSERT_EQ(scenarios.size(), 2u);
    EXPECT_EQ(scenarios[0].seed, 11u);
    EXPECT_EQ(scenarios[0].system.seed, 11u);
    EXPECT_EQ(scenarios[1].seed, 22u);
    EXPECT_EQ(scenarios[1].system.seed, 22u);
    EXPECT_EQ(scenarios[1].name, "s/seed=22");
}

TEST(ScenarioMatrix, SizeMatchesExpansion)
{
    exp::Scenario base;
    exp::ScenarioMatrix m(base);
    EXPECT_EQ(m.size(), 1u);
    m.axis("a", {{"x", noop()}, {"y", noop()}}).seeds({1, 2, 3});
    EXPECT_EQ(m.size(), 6u);
    EXPECT_EQ(m.expand().size(), 6u);
}

TEST(ScenarioMatrix, EmptyAxisIsFatal)
{
    exp::Scenario base;
    EXPECT_THROW(exp::ScenarioMatrix(base).axis("empty", {}),
                 FatalError);
}

/**
 * A scenario function doing real simulation work: run a small kernel
 * that streams through device memory, then record sim metrics and a
 * few draws from the scenario RNG stream.
 */
void
simScenario(const exp::Scenario &sc, exp::RunContext &ctx)
{
    setLogEnabled(false);
    rt::Runtime rt(sc.system);
    rt::Process &p = rt.createProcess("worker");
    const std::uint32_t line = sc.system.device.l2.lineBytes;
    const int n = 64;
    const VAddr buf = rt.deviceMalloc(
        p, 0, static_cast<std::uint64_t>(n) * line);

    std::uint64_t latency_sum = 0;
    auto kernel = [&](rt::BlockCtx &bctx) -> sim::Task {
        for (int i = 0; i < n; ++i) {
            const Cycles t0 = bctx.actor().now();
            co_await bctx.ldcg64(buf + i * line);
            latency_sum += bctx.actor().now() - t0;
        }
    };
    gpu::KernelConfig kcfg;
    auto h = rt.launch(p, 0, kcfg, kernel);
    rt.runUntilDone(h);

    const auto metrics = rt.metrics();
    ctx.row(sc.name, sc.seed, latency_sum, metrics.engine.steps,
            metrics.engine.now, ctx.rng().next(), ctx.rng().next());
    ctx.note("sim done");
}

std::vector<exp::Scenario>
determinismScenarios()
{
    exp::Scenario base;
    base.name = "det";
    base.system = test::smallConfig();
    return exp::ScenarioMatrix(base)
        .seeds({5, 6, 7})
        .axis("rep", {{"a", noop()}, {"b", noop()}})
        .expand();
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ExperimentRunner, CsvByteIdenticalAcrossThreadCounts)
{
    const auto scenarios = determinismScenarios();
    const std::vector<std::string> header = {
        "name", "seed", "latency_sum", "steps", "cycles", "r0", "r1"};

    std::vector<std::string> contents;
    for (unsigned threads : {1u, 2u, 8u}) {
        exp::ExperimentRunner runner({threads, /*progress=*/false});
        EXPECT_EQ(runner.threads(), threads);
        auto report = runner.run(scenarios, simScenario);
        ASSERT_EQ(report.results.size(), scenarios.size());
        EXPECT_EQ(report.failures(), 0u);

        const std::string path =
            "test_exp_det_" + std::to_string(threads) + ".csv";
        report.writeCsv(path, header);
        contents.push_back(slurp(path));
        std::remove(path.c_str());
    }
    ASSERT_EQ(contents.size(), 3u);
    EXPECT_FALSE(contents[0].empty());
    EXPECT_EQ(contents[0], contents[1]);
    EXPECT_EQ(contents[0], contents[2]);
    // Header + one row per scenario.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(contents[0].begin(), contents[0].end(),
                             '\n')),
              scenarios.size() + 1);
}

TEST(ExperimentRunner, RngStreamStableUnderReordering)
{
    // The per-scenario stream is keyed by seed + name, not position:
    // running a subset of the sweep reproduces the same rows.
    const auto all = determinismScenarios();
    std::vector<exp::Scenario> subset = {all[3], all[1]};

    exp::ExperimentRunner runner({2, /*progress=*/false});
    auto full = runner.run(all, simScenario);
    auto part = runner.run(subset, simScenario);

    ASSERT_EQ(part.results.size(), 2u);
    EXPECT_EQ(part.results[0].rows, full.results[3].rows);
    EXPECT_EQ(part.results[1].rows, full.results[1].rows);
}

TEST(ExperimentRunner, FailuresAreIsolatedAndOrdered)
{
    exp::Scenario base;
    base.name = "f";
    auto scenarios = exp::ScenarioMatrix(base)
                         .axis("k", {{"ok1", noop()},
                                     {"boom", noop()},
                                     {"ok2", noop()}})
                         .expand();

    exp::ExperimentRunner runner({8, /*progress=*/false});
    auto report = runner.run(
        scenarios, [](const exp::Scenario &sc, exp::RunContext &ctx) {
            if (sc.paramOr("k") == "boom")
                fatal("intentional failure");
            ctx.row(sc.paramOr("k"), 1);
        });

    ASSERT_EQ(report.results.size(), 3u);
    EXPECT_EQ(report.failures(), 1u);
    EXPECT_TRUE(report.results[0].ok);
    EXPECT_FALSE(report.results[1].ok);
    EXPECT_EQ(report.results[1].error, "intentional failure");
    EXPECT_TRUE(report.results[1].rows.empty());
    EXPECT_TRUE(report.results[2].ok);
    // allRows keeps scenario order and skips nothing else.
    auto rows = report.allRows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], "ok1");
    EXPECT_EQ(rows[1][0], "ok2");
}

} // namespace
} // namespace gpubox
