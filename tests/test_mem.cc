/**
 * @file
 * Unit tests for the memory subsystem: address codec, page allocator,
 * virtual space (translation, backing store, release).
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address.hh"
#include "mem/page_allocator.hh"
#include "mem/virtual_space.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace gpubox::mem
{
namespace
{

TEST(AddressCodec, PackUnpackRoundtrip)
{
    AddressCodec codec(64 * 1024);
    const PAddr p = codec.pack(3, 0xabcd, 0x1234);
    const PhysLoc loc = codec.unpack(p);
    EXPECT_EQ(loc.gpu, 3);
    EXPECT_EQ(loc.frame, 0xabcdu);
    EXPECT_EQ(loc.offset, 0x1234u);
    EXPECT_EQ(codec.gpuOf(p), 3);
    EXPECT_EQ(codec.frameOf(p), 0xabcdu);
    EXPECT_EQ(codec.offsetOf(p), 0x1234u);
}

TEST(AddressCodec, PageBase)
{
    AddressCodec codec(4096);
    const PAddr p = codec.pack(1, 7, 100);
    EXPECT_EQ(codec.pageBase(p), codec.pack(1, 7, 0));
}

TEST(AddressCodec, DistinctGpusDistinctAddresses)
{
    AddressCodec codec(4096);
    EXPECT_NE(codec.pack(0, 5, 0), codec.pack(1, 5, 0));
}

TEST(AddressCodec, RejectsBadInputs)
{
    EXPECT_THROW(AddressCodec(1000), FatalError); // not a power of two
    AddressCodec codec(4096);
    EXPECT_THROW(codec.pack(0, 0, 4096), FatalError); // offset too big
    EXPECT_THROW(codec.pack(-1, 0, 0), FatalError);
    // 12-bit gpu field: pod-scale ids pack, 4096 is the first to not.
    EXPECT_NO_THROW(codec.pack(1023, 0, 0));
    EXPECT_THROW(codec.pack(4096, 0, 0), FatalError);
    EXPECT_THROW(codec.pack(0, 1ULL << 33, 0), FatalError);
}

TEST(PageAllocator, UniqueFramesUntilExhaustion)
{
    PageAllocator alloc(64, Rng(1));
    std::set<std::uint64_t> frames;
    for (int i = 0; i < 64; ++i) {
        const auto f = alloc.alloc();
        EXPECT_LT(f, 64u);
        EXPECT_TRUE(frames.insert(f).second) << "duplicate frame " << f;
    }
    EXPECT_EQ(alloc.freeFrames(), 0u);
    EXPECT_THROW(alloc.alloc(), FatalError);
}

TEST(PageAllocator, RandomizedOrder)
{
    PageAllocator alloc(256, Rng(2));
    std::vector<std::uint64_t> first16;
    for (int i = 0; i < 16; ++i)
        first16.push_back(alloc.alloc());
    // Not the identity sequence (randomized free list).
    bool sequential = true;
    for (int i = 0; i < 16; ++i)
        sequential &= first16[i] == static_cast<std::uint64_t>(i);
    EXPECT_FALSE(sequential);
}

TEST(PageAllocator, SeedsGiveDifferentOrders)
{
    PageAllocator a(128, Rng(3)), b(128, Rng(4));
    int same = 0;
    for (int i = 0; i < 32; ++i)
        if (a.alloc() == b.alloc())
            ++same;
    EXPECT_LT(same, 8);
}

TEST(PageAllocator, FreeAndReuse)
{
    PageAllocator alloc(4, Rng(5));
    auto frames = alloc.allocMany(4);
    EXPECT_EQ(alloc.usedFrames(), 4u);
    alloc.free(frames[1]);
    EXPECT_EQ(alloc.freeFrames(), 1u);
    EXPECT_EQ(alloc.alloc(), frames[1]);
}

TEST(PageAllocator, DoubleFreeIsFatal)
{
    PageAllocator alloc(4, Rng(6));
    const auto f = alloc.alloc();
    alloc.free(f);
    EXPECT_THROW(alloc.free(f), FatalError);
    EXPECT_THROW(alloc.free(99), FatalError);
}

class VirtualSpaceTest : public ::testing::Test
{
  protected:
    VirtualSpaceTest()
        : codec_(4096), alloc_(128, Rng(7)), space_(codec_)
    {}

    AddressCodec codec_;
    PageAllocator alloc_;
    VirtualSpace space_;
};

TEST_F(VirtualSpaceTest, AllocateMapsWholeRange)
{
    const VAddr base = space_.allocate(3 * 4096 + 100, 2, alloc_);
    // Rounded up to 4 pages.
    EXPECT_EQ(space_.allocationAt(base).size, 4u * 4096u);
    for (std::uint64_t off = 0; off < 4 * 4096; off += 512)
        EXPECT_TRUE(space_.isMapped(base + off));
    EXPECT_FALSE(space_.isMapped(base + 4 * 4096));
}

TEST_F(VirtualSpaceTest, TranslationPreservesGpuAndOffset)
{
    const VAddr base = space_.allocate(2 * 4096, 1, alloc_);
    for (std::uint64_t off : {0ULL, 100ULL, 4095ULL, 4096ULL, 8191ULL}) {
        const PAddr p = space_.translate(base + off);
        EXPECT_EQ(codec_.gpuOf(p), 1);
        EXPECT_EQ(codec_.offsetOf(p), off % 4096);
    }
}

TEST_F(VirtualSpaceTest, PagesLandOnDistinctFrames)
{
    const VAddr base = space_.allocate(8 * 4096, 0, alloc_);
    std::set<std::uint64_t> frames;
    for (int pg = 0; pg < 8; ++pg)
        frames.insert(codec_.frameOf(space_.translate(base + pg * 4096)));
    EXPECT_EQ(frames.size(), 8u);
}

TEST_F(VirtualSpaceTest, UnmappedTranslateIsFatal)
{
    EXPECT_THROW(space_.translate(0xdead0000), FatalError);
    const VAddr base = space_.allocate(4096, 0, alloc_);
    // Guard gap after the allocation stays unmapped.
    EXPECT_THROW(space_.translate(base + 4096), FatalError);
}

TEST_F(VirtualSpaceTest, BackingStoreReadWrite)
{
    const VAddr base = space_.allocate(4096, 0, alloc_);
    space_.write<std::uint64_t>(base + 8, 0x1122334455667788ULL);
    EXPECT_EQ(space_.read<std::uint64_t>(base + 8), 0x1122334455667788ULL);
    EXPECT_EQ(space_.read<std::uint32_t>(base + 8), 0x55667788u);
    space_.write<std::uint8_t>(base, 0xab);
    EXPECT_EQ(space_.read<std::uint8_t>(base), 0xab);
}

TEST_F(VirtualSpaceTest, ZeroInitialized)
{
    const VAddr base = space_.allocate(4096, 0, alloc_);
    EXPECT_EQ(space_.read<std::uint64_t>(base + 1000), 0u);
}

TEST_F(VirtualSpaceTest, OutOfBoundsAccessIsFatal)
{
    const VAddr base = space_.allocate(4096, 0, alloc_);
    EXPECT_THROW(space_.read<std::uint64_t>(base + 4090), FatalError);
    EXPECT_THROW(space_.read<std::uint32_t>(base - 4), FatalError);
}

TEST_F(VirtualSpaceTest, ReleaseReturnsFrames)
{
    const std::uint64_t before = alloc_.freeFrames();
    const VAddr base = space_.allocate(4 * 4096, 0, alloc_);
    EXPECT_EQ(alloc_.freeFrames(), before - 4);
    space_.release(base, alloc_);
    EXPECT_EQ(alloc_.freeFrames(), before);
    EXPECT_FALSE(space_.isMapped(base));
    EXPECT_THROW(space_.release(base, alloc_), FatalError);
}

TEST_F(VirtualSpaceTest, ZeroByteAllocationIsFatal)
{
    EXPECT_THROW(space_.allocate(0, 0, alloc_), FatalError);
}

TEST_F(VirtualSpaceTest, BytesAllocatedTracksLiveMemory)
{
    EXPECT_EQ(space_.bytesAllocated(), 0u);
    const VAddr a = space_.allocate(4096, 0, alloc_);
    const VAddr b = space_.allocate(2 * 4096, 0, alloc_);
    EXPECT_EQ(space_.bytesAllocated(), 3u * 4096u);
    space_.release(a, alloc_);
    EXPECT_EQ(space_.bytesAllocated(), 2u * 4096u);
    space_.release(b, alloc_);
    EXPECT_EQ(space_.bytesAllocated(), 0u);
}

// Property: translation roundtrips over many random allocations.
TEST(VirtualSpaceProperty, TranslationConsistentAcrossAllocs)
{
    AddressCodec codec(4096);
    PageAllocator alloc(512, Rng(11));
    VirtualSpace space(codec);
    Rng rng(13);

    std::vector<std::pair<VAddr, std::uint64_t>> allocs;
    for (int i = 0; i < 40; ++i) {
        const std::uint64_t bytes = (rng.uniform(8) + 1) * 4096;
        allocs.emplace_back(space.allocate(bytes, 0, alloc), bytes);
    }
    // Every page translates, stays on GPU 0, and distinct vaddrs map
    // to distinct paddrs.
    std::set<PAddr> seen;
    for (auto [base, bytes] : allocs) {
        for (std::uint64_t off = 0; off < bytes; off += 4096) {
            const PAddr p = space.translate(base + off);
            EXPECT_EQ(codec.gpuOf(p), 0);
            EXPECT_TRUE(seen.insert(p).second);
        }
    }
}

} // namespace
} // namespace gpubox::mem
