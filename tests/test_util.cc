/**
 * @file
 * Unit tests for util: rng, stats, histogram, kmeans1d, csv, heatmap,
 * bitops, contention meter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "cache/indexer.hh"
#include "test_common.hh"
#include "util/ascii_art.hh"
#include "util/bitops.hh"
#include "util/contention.hh"
#include "util/csv.hh"
#include "util/histogram.hh"
#include "util/kmeans1d.hh"
#include "util/log.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace gpubox
{
namespace
{

TEST(Bitops, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(Bitops, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
}

TEST(Bitops, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(Bitops, Mix64Distinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 1000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformZeroBound)
{
    Rng rng(7);
    EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.normal(10.0, 2.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.1);
    EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, SplitStreamsDecorrelated)
{
    Rng root(5);
    Rng a = root.split(1);
    Rng b = root.split(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng root(5);
    Rng a = root.split(3);
    Rng b = Rng(5).split(3);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(3);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(RunningStats, BasicMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
}

TEST(RunningStats, MergeMatchesPooled)
{
    Rng rng(17);
    RunningStats a, b, pooled;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.normal(0, 1);
        (i % 2 ? a : b).add(v);
        pooled.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), pooled.count());
    EXPECT_NEAR(a.mean(), pooled.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), pooled.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), pooled.min());
    EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, Median)
{
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50), 2.5);
}

TEST(Percentile, Extremes)
{
    EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 100), 5.0);
}

TEST(Percentile, EmptyIsFatal)
{
    EXPECT_THROW(percentile({}, 50), FatalError);
}

TEST(Percentile, OutOfRangeIsFatal)
{
    EXPECT_THROW(percentile({1.0}, 101), FatalError);
}

TEST(Histogram, BinningAndClamping)
{
    Histogram h(0, 100, 10);
    h.add(5);    // bin 0
    h.add(15);   // bin 1
    h.add(-3);   // clamps to bin 0
    h.add(250);  // clamps to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.totalCount(), 4u);
}

TEST(Histogram, ModeBin)
{
    Histogram h(0, 10, 10);
    h.add(3.5);
    h.add(3.6);
    h.add(7.0);
    EXPECT_EQ(h.modeBin(), 3u);
}

TEST(Histogram, RenderContainsCounts)
{
    Histogram h(0, 10, 2);
    h.add(1);
    h.add(6);
    h.add(7);
    const std::string out = h.render(20);
    EXPECT_NE(out.find("1"), std::string::npos);
    EXPECT_NE(out.find("2"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, InvalidConfigIsFatal)
{
    EXPECT_THROW(Histogram(0, 10, 0), FatalError);
    EXPECT_THROW(Histogram(10, 10, 4), FatalError);
}

TEST(Kmeans1d, FourWellSeparatedClusters)
{
    // Shaped like the paper's Fig. 4 latency clusters.
    Rng rng(23);
    std::vector<double> samples;
    const double centers[4] = {270, 450, 630, 950};
    for (double c : centers)
        for (int i = 0; i < 200; ++i)
            samples.push_back(rng.normal(c, 8));

    auto res = kmeans1d(samples, 4);
    ASSERT_EQ(res.centers.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(res.centers[i], centers[i], 15.0);
    ASSERT_EQ(res.boundaries.size(), 3u);
    EXPECT_GT(res.boundaries[0], 270);
    EXPECT_LT(res.boundaries[0], 450);
    EXPECT_GT(res.boundaries[2], 630);
    EXPECT_LT(res.boundaries[2], 950);
    for (auto size : res.sizes)
        EXPECT_EQ(size, 200u);
}

TEST(Kmeans1d, SingleCluster)
{
    std::vector<double> samples = {5, 5, 5, 5};
    auto res = kmeans1d(samples, 1);
    EXPECT_DOUBLE_EQ(res.centers[0], 5.0);
    EXPECT_TRUE(res.boundaries.empty());
}

TEST(Kmeans1d, TooFewSamplesIsFatal)
{
    EXPECT_THROW(kmeans1d({1.0}, 2), FatalError);
    EXPECT_THROW(kmeans1d({1.0}, 0), FatalError);
}

TEST(Kmeans1d, TwoClustersExact)
{
    std::vector<double> samples = {1, 1, 1, 9, 9, 9};
    auto res = kmeans1d(samples, 2);
    EXPECT_DOUBLE_EQ(res.centers[0], 1.0);
    EXPECT_DOUBLE_EQ(res.centers[1], 9.0);
    EXPECT_DOUBLE_EQ(res.boundaries[0], 5.0);
}

TEST(Csv, WritesRowsAndEscapes)
{
    const std::string path = ::testing::TempDir() + "/gpubox_csv_test.csv";
    {
        CsvWriter csv(path);
        csv.row("a", 1, 2.5);
        csv.row("with,comma", "with\"quote");
        EXPECT_EQ(csv.rowsWritten(), 2u);
    }
    std::ifstream in(path);
    std::string line1, line2;
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(line1, "a,1,2.5");
    EXPECT_EQ(line2, "\"with,comma\",\"with\"\"quote\"");
    std::remove(path.c_str());
}

TEST(Csv, UnwritablePathIsFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), FatalError);
}

TEST(Heatmap, ShapeAndRamp)
{
    std::vector<double> data = {0, 0, 0, 9};
    const std::string out = renderHeatmap(data, 2, 2);
    // Two lines of two chars each.
    EXPECT_EQ(out, std::string(" .\n.@\n").substr(0, 0) + out);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out[0], ' ');
    EXPECT_EQ(out[4], '@');
}

TEST(Heatmap, PoolsLargeMatrices)
{
    std::vector<double> data(100 * 300, 1.0);
    HeatmapOptions opt;
    opt.maxRows = 10;
    opt.maxCols = 30;
    const std::string out = renderHeatmap(data, 100, 300, opt);
    // 10 lines of 30 chars + newline.
    EXPECT_EQ(out.size(), 10u * 31u);
}

TEST(Heatmap, ShapeMismatchIsFatal)
{
    EXPECT_THROW(renderHeatmap({1.0}, 2, 2), FatalError);
}

TEST(ContentionMeter, FreeUnderThreshold)
{
    ContentionMeter m(1000, 4, 10);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(m.record(100), 0u);
    EXPECT_EQ(m.occupancy(100), 4u);
}

TEST(ContentionMeter, QueueingAboveThreshold)
{
    ContentionMeter m(1000, 2, 10);
    EXPECT_EQ(m.record(0), 0u);
    EXPECT_EQ(m.record(0), 0u);
    EXPECT_EQ(m.record(0), 10u);
    EXPECT_EQ(m.record(0), 20u);
}

TEST(ContentionMeter, WindowRollsOver)
{
    ContentionMeter m(1000, 1, 10);
    EXPECT_EQ(m.record(0), 0u);
    EXPECT_EQ(m.record(10), 10u);
    // Next window: counter resets.
    EXPECT_EQ(m.record(1500), 0u);
    EXPECT_EQ(m.occupancy(1500), 1u);
    EXPECT_EQ(m.occupancy(2500), 0u);
    EXPECT_EQ(m.totalRequests(), 3u);
}

TEST(ContentionMeter, LateRecordsCannotWipeTheWindow)
{
    // Multi-hop routes and response legs record at skewed arrival
    // times; a record landing in an already-passed window must count
    // toward the current window, not reset it (windows only advance).
    ContentionMeter m(1000, 1, 10);
    EXPECT_EQ(m.record(1500), 0u);  // window 1
    EXPECT_EQ(m.record(200), 10u);  // late arrival: still window 1
    EXPECT_EQ(m.occupancy(1500), 2u);
    EXPECT_EQ(m.record(1600), 20u); // window 1 kept accumulating
}

TEST(Log, FatalThrows)
{
    EXPECT_THROW(fatal("boom ", 42), FatalError);
    try {
        fatal("value=", 7);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=7");
    }
}

TEST(Log, EnableDisable)
{
    setLogEnabled(false);
    EXPECT_FALSE(logEnabled());
    setLogEnabled(true);
    EXPECT_TRUE(logEnabled());
}

// The shared test fixtures must pin the geometry the attacks depend
// on: the DGX-1 box of the paper and the scaled-down 4-GPU variant,
// both with multiple page colors and 16-way NUMA L2s.
TEST(TestCommon, Geometry)
{
    const auto dgx1 = test::dgx1Config(7);
    EXPECT_EQ(dgx1.seed, 7u);
    EXPECT_EQ(dgx1.topology.numGpus(), 8);
    EXPECT_EQ(dgx1.device.numSms, 56);
    EXPECT_EQ(dgx1.device.l2.numSets(), 2048u);
    EXPECT_EQ(dgx1.device.l2.ways, 16u);
    const auto dgx1_lines_per_page =
        dgx1.pageBytes / dgx1.device.l2.lineBytes;
    EXPECT_EQ(dgx1_lines_per_page, 512u);
    cache::HashedPageIndexer dgx1_idx(dgx1.device.l2.numSets(),
                                      dgx1.device.l2.lineBytes,
                                      dgx1.pageBytes, 0x5a17);
    EXPECT_EQ(dgx1_idx.numColors(), 4u);

    const auto small = test::smallConfig(7);
    EXPECT_EQ(small.seed, 7u);
    EXPECT_EQ(small.topology.numGpus(), 4);
    EXPECT_EQ(small.device.l2.numSets(), 128u);
    EXPECT_EQ(small.device.l2.ways, 16u);
    EXPECT_EQ(small.pageBytes / small.device.l2.lineBytes, 32u);
    cache::HashedPageIndexer small_idx(small.device.l2.numSets(),
                                       small.device.l2.lineBytes,
                                       small.pageBytes, 0x5a17);
    EXPECT_EQ(small_idx.numColors(), 4u);
}

} // namespace
} // namespace gpubox
