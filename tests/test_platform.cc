/**
 * @file
 * Tests for the platform descriptor layer: registry contents, config
 * resolution, per-platform geometry constraints and the peer-access
 * policy each descriptor encodes.
 */

#include <gtest/gtest.h>

#include "rt/platform.hh"
#include "rt/runtime.hh"
#include "util/log.hh"

namespace gpubox::rt
{
namespace
{

TEST(PlatformRegistry, KnownPlatformsAreRegistered)
{
    const auto names = platformNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "dgx1-p100");
    EXPECT_EQ(names[1], "dgx2-nvswitch");
    EXPECT_EQ(names[2], "quad-ring");
    EXPECT_EQ(names[3], "pcie-box");
    for (const auto &n : names) {
        EXPECT_TRUE(platformExists(n));
        EXPECT_EQ(platformByName(n).name, n);
        EXPECT_FALSE(platformByName(n).description.empty());
        EXPECT_FALSE(platformByName(n).linkGen.empty());
    }
    EXPECT_FALSE(platformExists("dgx9000"));
    EXPECT_THROW(platformByName("dgx9000"), FatalError);
}

TEST(PlatformRegistry, Dgx1IsThePapersBox)
{
    const Platform &p = platformByName("dgx1-p100");
    EXPECT_EQ(p.topology.numGpus(), 8);
    EXPECT_EQ(p.topology.links().size(), 16u);
    EXPECT_FALSE(p.peerOverRoutes);
    EXPECT_EQ(p.device.l2.sizeBytes, 4ULL << 20);
    EXPECT_EQ(p.device.numSms, 56);
    // The resolved SystemConfig must equal the historical defaults so
    // "default scenario" keeps meaning "the paper's machine".
    const SystemConfig cfg = p.systemConfig(7);
    const SystemConfig defaults;
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_EQ(cfg.platform, "dgx1-p100");
    EXPECT_EQ(cfg.pageBytes, defaults.pageBytes);
    EXPECT_EQ(cfg.framesPerGpu, defaults.framesPerGpu);
    EXPECT_EQ(cfg.timing.l2HitCycles, defaults.timing.l2HitCycles);
    EXPECT_EQ(cfg.link.hopCycles, defaults.link.hopCycles);
}

TEST(PlatformRegistry, DescriptorsDifferWhereTheyShould)
{
    const Platform &dgx2 = platformByName("dgx2-nvswitch");
    EXPECT_EQ(dgx2.topology.numGpus(), 16);
    EXPECT_TRUE(dgx2.peerOverRoutes);
    EXPECT_EQ(dgx2.device.l2.sizeBytes, 8ULL << 20);

    const Platform &ring = platformByName("quad-ring");
    EXPECT_EQ(ring.topology.numGpus(), 4);
    EXPECT_EQ(ring.topology.hopCount(0, 2), 2);
    EXPECT_TRUE(ring.peerOverRoutes);

    const Platform &pcie = platformByName("pcie-box");
    EXPECT_EQ(pcie.linkGen, "pcie3");
    // PCIe: much higher per-hop latency, much lower bandwidth.
    EXPECT_GT(pcie.link.hopCycles, dgx2.link.hopCycles);
    EXPECT_LT(pcie.link.bytesPerCycle, dgx2.link.bytesPerCycle);
}

TEST(PlatformRegistry, GeometryFitsTheHashedIndexer)
{
    // Every platform's L2 must satisfy the model's power-of-two
    // page-color constraint and yield at least one color.
    for (const Platform &p : allPlatforms()) {
        const std::uint32_t sets = p.device.l2.numSets();
        const std::uint32_t lines_per_page = static_cast<std::uint32_t>(
            p.pageBytes / p.device.l2.lineBytes);
        ASSERT_GT(lines_per_page, 0u) << p.name;
        EXPECT_EQ(sets % lines_per_page, 0u) << p.name;
        EXPECT_EQ(sets & (sets - 1), 0u) << p.name;
        EXPECT_GE(sets / lines_per_page, 1u) << p.name;
    }
}

TEST(PlatformRegistry, EveryPlatformBootsARuntime)
{
    for (const Platform &p : allPlatforms()) {
        Runtime rt(p.systemConfig(3));
        EXPECT_EQ(rt.numGpus(), p.topology.numGpus()) << p.name;
        EXPECT_EQ(rt.config().platform, p.name);
        // GPUs 0 and 1 are adjacent everywhere: the standard bench
        // attack pair works on the whole family.
        Process &proc = rt.createProcess("probe");
        EXPECT_TRUE(rt.enablePeerAccess(proc, 0, 1).ok()) << p.name;
    }
}

TEST(PlatformRegistry, PeerPolicyMatchesDescriptor)
{
    // DGX-1 refuses two-hop peers, the routed platforms accept their
    // most distant pair.
    Runtime dgx1(platformByName("dgx1-p100").systemConfig(1));
    Process &a = dgx1.createProcess("a");
    EXPECT_EQ(dgx1.enablePeerAccess(a, 0, 5).code(),
              StatusCode::NotConnected);
    EXPECT_FALSE(dgx1.peerReachable(0, 5));

    Runtime ring(platformByName("quad-ring").systemConfig(1));
    Process &b = ring.createProcess("b");
    EXPECT_TRUE(ring.enablePeerAccess(b, 0, 2).ok());
    EXPECT_TRUE(ring.peerReachable(0, 2));

    Runtime pcie(platformByName("pcie-box").systemConfig(1));
    Process &c = pcie.createProcess("c");
    EXPECT_TRUE(pcie.enablePeerAccess(c, 0, 3).ok());
}

TEST(PlatformRegistry, LatencyClustersStayOrderedOnEveryPlatform)
{
    // The NUMA-L2 attack needs LH < LM < RH < RM between the pair the
    // benches use; verify the calibration-free ground truth ordering
    // from each descriptor's timing/link parameters.
    for (const Platform &p : allPlatforms()) {
        const TimingParams &t = p.timing;
        const Cycles two_hops = 2 * p.link.hopCycles;
        const Cycles lh = t.l2HitCycles;
        const Cycles lm = t.hbmCycles;
        const Cycles rh = t.l2HitCycles + two_hops;
        const Cycles rm = t.hbmCycles + two_hops + t.remoteMissExtra;
        EXPECT_LT(lh, lm) << p.name;
        EXPECT_LT(lm, rh) << p.name;
        EXPECT_LT(rh, rm) << p.name;
        // Separation must clear the jitter by a wide margin.
        EXPECT_GT(rh - lm, 10 * t.jitterSigma) << p.name;
    }
}

} // namespace
} // namespace gpubox::rt
