/**
 * @file
 * Tests for the platform descriptor layer: registry contents, config
 * resolution, per-platform geometry constraints and the peer-access
 * policy each descriptor encodes.
 */

#include <gtest/gtest.h>

#include "noc/fabric.hh"
#include "rt/platform.hh"
#include "rt/runtime.hh"
#include "util/log.hh"

namespace gpubox::rt
{
namespace
{

TEST(PlatformRegistry, KnownPlatformsAreRegistered)
{
    const auto names = platformNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names[0], "dgx1-p100");
    EXPECT_EQ(names[1], "dgx2-nvswitch");
    EXPECT_EQ(names[2], "dgx2-mig2");
    EXPECT_EQ(names[3], "hgx-hybrid");
    EXPECT_EQ(names[4], "quad-ring");
    EXPECT_EQ(names[5], "pcie-box");
    EXPECT_EQ(names[6], "dgx-superpod");
    EXPECT_EQ(names[7], "dgx-gigapod");
    for (const auto &n : names) {
        EXPECT_TRUE(platformExists(n));
        EXPECT_EQ(platformByName(n).name, n);
        EXPECT_FALSE(platformByName(n).description.empty());
        EXPECT_FALSE(platformByName(n).linkGen.empty());
    }
    EXPECT_FALSE(platformExists("dgx9000"));
    EXPECT_THROW(platformByName("dgx9000"), FatalError);
}

TEST(PlatformRegistry, Dgx1IsThePapersBox)
{
    const Platform &p = platformByName("dgx1-p100");
    EXPECT_EQ(p.topology.numGpus(), 8);
    EXPECT_EQ(p.topology.links().size(), 16u);
    EXPECT_FALSE(p.peerOverRoutes);
    EXPECT_EQ(p.device.l2.sizeBytes, 4ULL << 20);
    EXPECT_EQ(p.device.numSms, 56);
    // The resolved SystemConfig must equal the historical defaults so
    // "default scenario" keeps meaning "the paper's machine".
    const SystemConfig cfg = p.systemConfig(7);
    const SystemConfig defaults;
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_EQ(cfg.platform, "dgx1-p100");
    EXPECT_EQ(cfg.pageBytes, defaults.pageBytes);
    EXPECT_EQ(cfg.framesPerGpu, defaults.framesPerGpu);
    EXPECT_EQ(cfg.timing.l2HitCycles, defaults.timing.l2HitCycles);
    EXPECT_EQ(cfg.link.hopCycles, defaults.link.hopCycles);
}

TEST(PlatformRegistry, DescriptorsDifferWhereTheyShould)
{
    const Platform &dgx2 = platformByName("dgx2-nvswitch");
    EXPECT_EQ(dgx2.topology.numGpus(), 16);
    EXPECT_TRUE(dgx2.peerOverRoutes);
    EXPECT_EQ(dgx2.device.l2.sizeBytes, 8ULL << 20);

    const Platform &ring = platformByName("quad-ring");
    EXPECT_EQ(ring.topology.numGpus(), 4);
    EXPECT_EQ(ring.topology.hopCount(0, 2), 2);
    EXPECT_TRUE(ring.peerOverRoutes);

    const Platform &pcie = platformByName("pcie-box");
    EXPECT_EQ(pcie.linkGen, "pcie3");
    // PCIe: much higher per-hop latency, much lower bandwidth.
    EXPECT_GT(pcie.link.hopCycles, dgx2.link.hopCycles);
    EXPECT_LT(pcie.link.bytesPerCycle, dgx2.link.bytesPerCycle);
}

TEST(PlatformRegistry, Dgx2RoutesThroughRealSwitchNodes)
{
    const Platform &p = platformByName("dgx2-nvswitch");
    EXPECT_EQ(p.topology.numGpus(), 16);
    EXPECT_EQ(p.topology.numSwitches(), 6);
    EXPECT_EQ(p.topology.numNodes(), 22);
    // 6 planes x 16 ports: every GPU pair is two switched hops apart.
    EXPECT_EQ(p.topology.links().size(), 96u);
    for (GpuId a = 0; a < 16; ++a)
        for (GpuId b = a + 1; b < 16; ++b) {
            EXPECT_EQ(p.topology.hopCount(a, b), 2) << a << "," << b;
            const auto &route = p.topology.route(a, b);
            ASSERT_EQ(route.size(), 3u);
            EXPECT_TRUE(p.topology.isSwitch(route[1]));
        }
    // The per-route latency budget matches the legacy single-hop
    // nvswitch calibration: 2 port hops + crossbar transit = 250.
    noc::Fabric fab(p.topology, p.link, p.switchParams);
    EXPECT_EQ(fab.routeBaseCycles(0, 1),
              noc::LinkGen::nvswitch().hopCycles);
}

TEST(PlatformRegistry, Mig2IsDgx2WithAdministrativeSlicing)
{
    const Platform &mig = platformByName("dgx2-mig2");
    const Platform &dgx2 = platformByName("dgx2-nvswitch");
    EXPECT_EQ(mig.migSlices, 2u);
    EXPECT_EQ(dgx2.migSlices, 1u);
    // The fabric is NOT partitioned: same topology, links, timing.
    EXPECT_EQ(mig.topology.numNodes(), dgx2.topology.numNodes());
    EXPECT_EQ(mig.topology.links().size(),
              dgx2.topology.links().size());
    EXPECT_EQ(mig.link.hopCycles, dgx2.link.hopCycles);
    EXPECT_EQ(mig.systemConfig(5).migSlices, 2u);
}

TEST(PlatformRegistry, HgxHybridMixesLinkGenerations)
{
    const Platform &p = platformByName("hgx-hybrid");
    EXPECT_EQ(p.topology.numGpus(), 8);
    EXPECT_EQ(p.topology.numSwitches(), 2);
    ASSERT_EQ(p.perLink.size(), p.topology.links().size());
    const auto mix = p.resolvedLinkMix();
    ASSERT_EQ(mix.size(), 2u);
    EXPECT_EQ(mix[0].first, "nvlink-v2");
    EXPECT_EQ(mix[0].second, 12u);
    EXPECT_EQ(mix[1].first, "pcie3");
    EXPECT_EQ(mix[1].second, 9u);
    // Intra-quad stays single-hop NVLink; cross-quad crosses both
    // host switches and the shared trunk.
    EXPECT_EQ(p.topology.hopCount(0, 3), 1);
    EXPECT_EQ(p.topology.hopCount(0, 4), 3);
    const auto &route = p.topology.route(0, 4);
    ASSERT_EQ(route.size(), 4u);
    EXPECT_TRUE(p.topology.isSwitch(route[1]));
    EXPECT_TRUE(p.topology.isSwitch(route[2]));
    // Every cross-quad pair shares that trunk link.
    EXPECT_GE(p.topology.linkIndex(8, 9), 0);

    // Uniform platforms fall back to {linkGen, all links}.
    const auto uniform = platformByName("pcie-box").resolvedLinkMix();
    ASSERT_EQ(uniform.size(), 1u);
    EXPECT_EQ(uniform[0].first, "pcie3");
    EXPECT_EQ(
        uniform[0].second,
        platformByName("pcie-box").topology.links().size());
}

TEST(PlatformRegistry, SuperpodComposesBoxesOverASpine)
{
    const Platform &p = platformByName("dgx-superpod");
    const noc::Topology &t = p.topology;
    EXPECT_EQ(t.numGpus(), 128);
    EXPECT_EQ(t.numSwitches(), 180); // 48 planes + 128 NICs + 4 spines
    EXPECT_EQ(t.numNodes(), 308);
    EXPECT_EQ(t.numIslands(), 8);
    EXPECT_EQ(t.numSwitchesOfRole(noc::SwitchRole::Crossbar), 48);
    EXPECT_EQ(t.numSwitchesOfRole(noc::SwitchRole::Nic), 128);
    EXPECT_EQ(t.numSwitchesOfRole(noc::SwitchRole::Spine), 4);
    EXPECT_TRUE(p.peerOverRoutes);
    ASSERT_EQ(p.perLink.size(), t.links().size());
    ASSERT_EQ(p.perSwitch.size(),
              static_cast<std::size_t>(t.numSwitches()));
    const auto mix = p.resolvedLinkMix();
    ASSERT_EQ(mix.size(), 3u);
    EXPECT_EQ(mix[0].first, "nvswitch-port");
    EXPECT_EQ(mix[0].second, 768u);
    EXPECT_EQ(mix[1].first, "nic-port");
    EXPECT_EQ(mix[1].second, 128u);
    EXPECT_EQ(mix[2].first, "rdma-spine");
    EXPECT_EQ(mix[2].second, 512u);
    // Intra-box pairs ride a plane; cross-box pairs ride the spine.
    EXPECT_EQ(t.hopCount(0, 15), 2);
    EXPECT_EQ(t.hopCount(0, 16), 4);
    EXPECT_TRUE(t.crossIsland(0, 16));
    // The resolved SystemConfig carries the per-switch parameters so
    // the runtime's fabric charges the spine's own long window.
    const SystemConfig cfg = p.systemConfig(11);
    ASSERT_EQ(cfg.perSwitch.size(), 180u);
    const auto sw = cfg.resolvedPerSwitch();
    EXPECT_EQ(sw[0].windowCycles,
              noc::SwitchGen::nvswitchPlane().windowCycles);
    EXPECT_EQ(sw[48].crossbarCycles,
              noc::SwitchGen::nicEngine().crossbarCycles);
    EXPECT_EQ(sw[176].windowCycles,
              noc::SwitchGen::rdmaSpine().windowCycles);
}

TEST(PlatformRegistry, GigapodScalesTheSuperpodShape)
{
    // 64 boxes x 16 V100s behind 8 spines: the thousand-GPU pod the
    // O(n) route layer exists for. Same box hardware and link
    // generations as dgx-superpod, ~8x the scale.
    const Platform &p = platformByName("dgx-gigapod");
    const noc::Topology &t = p.topology;
    EXPECT_EQ(t.numGpus(), 1024);
    EXPECT_EQ(t.numSwitches(), 1416); // 384 planes + 1024 NICs + 8 spines
    EXPECT_EQ(t.numNodes(), 2440);
    EXPECT_EQ(t.numIslands(), 64);
    EXPECT_EQ(t.numSwitchesOfRole(noc::SwitchRole::Crossbar), 384);
    EXPECT_EQ(t.numSwitchesOfRole(noc::SwitchRole::Nic), 1024);
    EXPECT_EQ(t.numSwitchesOfRole(noc::SwitchRole::Spine), 8);
    EXPECT_EQ(t.links().size(), 15360u);
    EXPECT_TRUE(p.peerOverRoutes);
    ASSERT_EQ(p.perLink.size(), t.links().size());
    ASSERT_EQ(p.perSwitch.size(),
              static_cast<std::size_t>(t.numSwitches()));
    const auto mix = p.resolvedLinkMix();
    ASSERT_EQ(mix.size(), 3u);
    EXPECT_EQ(mix[0].first, "nvswitch-port");
    EXPECT_EQ(mix[0].second, 6144u);
    EXPECT_EQ(mix[1].first, "nic-port");
    EXPECT_EQ(mix[1].second, 1024u);
    EXPECT_EQ(mix[2].first, "rdma-spine");
    EXPECT_EQ(mix[2].second, 8192u);
    // Pod routing: plane hop inside a box, NIC-spine-NIC across.
    EXPECT_EQ(t.hopCount(0, 15), 2);
    EXPECT_EQ(t.hopCount(0, 1023), 4);
    EXPECT_TRUE(t.crossIsland(0, 1023));
    // Same V100 calibration as dgx2-nvswitch / dgx-superpod.
    EXPECT_EQ(p.device.numSms, 80);
    EXPECT_EQ(p.device.l2.sizeBytes, 8ULL << 20);
    EXPECT_EQ(p.timing.clockGhz, 1.53);
}

TEST(PlatformRegistry, GeometryFitsTheHashedIndexer)
{
    // Every platform's L2 must satisfy the model's power-of-two
    // page-color constraint and yield at least one color.
    for (const Platform &p : allPlatforms()) {
        const std::uint32_t sets = p.device.l2.numSets();
        const std::uint32_t lines_per_page = static_cast<std::uint32_t>(
            p.pageBytes / p.device.l2.lineBytes);
        ASSERT_GT(lines_per_page, 0u) << p.name;
        EXPECT_EQ(sets % lines_per_page, 0u) << p.name;
        EXPECT_EQ(sets & (sets - 1), 0u) << p.name;
        EXPECT_GE(sets / lines_per_page, 1u) << p.name;
    }
}

TEST(PlatformRegistry, EveryPlatformBootsARuntime)
{
    for (const Platform &p : allPlatforms()) {
        Runtime rt(p.systemConfig(3));
        EXPECT_EQ(rt.numGpus(), p.topology.numGpus()) << p.name;
        EXPECT_EQ(rt.config().platform, p.name);
        // GPUs 0 and 1 are adjacent everywhere: the standard bench
        // attack pair works on the whole family.
        Process &proc = rt.createProcess("probe");
        EXPECT_TRUE(rt.enablePeerAccess(proc, 0, 1).ok()) << p.name;
    }
}

TEST(PlatformRegistry, PeerPolicyMatchesDescriptor)
{
    // DGX-1 refuses two-hop peers, the routed platforms accept their
    // most distant pair.
    Runtime dgx1(platformByName("dgx1-p100").systemConfig(1));
    Process &a = dgx1.createProcess("a");
    EXPECT_EQ(dgx1.enablePeerAccess(a, 0, 5).code(),
              StatusCode::NotConnected);
    EXPECT_FALSE(dgx1.peerReachable(0, 5));

    Runtime ring(platformByName("quad-ring").systemConfig(1));
    Process &b = ring.createProcess("b");
    EXPECT_TRUE(ring.enablePeerAccess(b, 0, 2).ok());
    EXPECT_TRUE(ring.peerReachable(0, 2));

    Runtime pcie(platformByName("pcie-box").systemConfig(1));
    Process &c = pcie.createProcess("c");
    EXPECT_TRUE(pcie.enablePeerAccess(c, 0, 3).ok());
}

TEST(PlatformRegistry, LatencyClustersStayOrderedOnEveryPlatform)
{
    // The NUMA-L2 attack needs LH < LM < RH < RM between the pair the
    // benches use; verify the calibration-free ground truth ordering
    // from each descriptor's timing/link/switch parameters. The
    // remote legs are the *routed* base cost -- on switched
    // descriptors a leg is two port hops plus the crossbar, not one
    // direct link.
    for (const Platform &p : allPlatforms()) {
        const TimingParams &t = p.timing;
        const std::vector<noc::SwitchParams> per_switch =
            p.perSwitch.empty()
                ? std::vector<noc::SwitchParams>(
                      static_cast<std::size_t>(
                          p.topology.numSwitches()),
                      p.switchParams)
                : p.perSwitch;
        const noc::Fabric fab =
            p.perLink.empty()
                ? noc::Fabric(p.topology, p.link, per_switch)
                : noc::Fabric(p.topology, p.perLink, per_switch);
        const Cycles two_legs = 2 * fab.routeBaseCycles(1, 0);
        const Cycles lh = t.l2HitCycles;
        const Cycles lm = t.hbmCycles;
        const Cycles rh = t.l2HitCycles + two_legs;
        const Cycles rm = t.hbmCycles + two_legs + t.remoteMissExtra;
        EXPECT_LT(lh, lm) << p.name;
        EXPECT_LT(lm, rh) << p.name;
        EXPECT_LT(rh, rm) << p.name;
        // Separation must clear the jitter by a wide margin.
        EXPECT_GT(rh - lm, 10 * t.jitterSigma) << p.name;
    }
}

} // namespace
} // namespace gpubox::rt
