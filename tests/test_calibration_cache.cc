/**
 * @file
 * Tests for the calibration memo: a cached TimingThresholds must be
 * bit-identical to a fresh TimingOracle run on a throwaway runtime of
 * the same (platform, seed), and sweeps that consume calibration via
 * RunContext must stay byte-identical for 1, 2 and 8 worker threads.
 */

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "attack/calibration_cache.hh"
#include "attack/timing_oracle.hh"
#include "exp/experiment_runner.hh"
#include "exp/scenario.hh"
#include "rt/platform.hh"
#include "rt/runtime.hh"

namespace gpubox
{
namespace
{

/** Exact bit pattern of a double; EXPECT_EQ on doubles would accept
 *  -0.0 == 0.0, which is not the bit-identity the cache promises. */
std::uint64_t
bits(double v)
{
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
}

void
expectBitIdentical(const attack::TimingThresholds &a,
                   const attack::TimingThresholds &b)
{
    EXPECT_EQ(bits(a.localBoundary), bits(b.localBoundary));
    EXPECT_EQ(bits(a.remoteBoundary), bits(b.remoteBoundary));
    EXPECT_EQ(bits(a.localHitCenter), bits(b.localHitCenter));
    EXPECT_EQ(bits(a.localMissCenter), bits(b.localMissCenter));
    EXPECT_EQ(bits(a.remoteHitCenter), bits(b.remoteHitCenter));
    EXPECT_EQ(bits(a.remoteMissCenter), bits(b.remoteMissCenter));
}

/** The reference computation the cache claims to memoise: fresh
 *  runtime from (platform, seed), one oracle run. */
attack::TimingThresholds
freshThresholds(const std::string &platform, std::uint64_t seed)
{
    rt::Runtime rt(rt::platformByName(platform).systemConfig(seed));
    rt::Process &proc = rt.createProcess("calibration");
    attack::TimingOracle oracle(rt, proc);
    return oracle.calibrate(1, 0, 48, 6).thresholds;
}

TEST(CalibrationCache, HitIsBitIdenticalToFreshCompute)
{
    const std::string platform = rt::platformNames().front();
    const attack::CalibrationKey key{platform, 2023, 1, 0, 48, 6};

    attack::CalibrationCache cache;
    const auto first = cache.thresholds(key);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    const auto cached = cache.thresholds(key);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    expectBitIdentical(first, cached);
    expectBitIdentical(first, freshThresholds(platform, 2023));
}

TEST(CalibrationCache, DistinctKeysAreDistinctEntries)
{
    const std::string platform = rt::platformNames().front();
    attack::CalibrationCache cache;
    cache.thresholds({platform, 2023, 1, 0, 48, 6});
    cache.thresholds({platform, 7, 1, 0, 48, 6}); // other seed
    cache.thresholds({platform, 2023, 1, 0, 48, 3}); // other rounds
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.misses(), 3u);
    EXPECT_EQ(cache.hits(), 0u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(CalibrationCache, ConcurrentHitsShareOneCompute)
{
    const std::string platform = rt::platformNames().front();
    const attack::CalibrationKey key{platform, 2023, 1, 0, 48, 6};

    attack::CalibrationCache cache;
    // Pay the single miss serially so the threads below exercise the
    // pure concurrent-hit path (the same shape the 8-thread runner
    // sweep produces after the first scenario of a key completes).
    const auto reference = cache.thresholds(key);

    constexpr unsigned kThreads = 8;
    constexpr unsigned kItersPerThread = 16;
    std::vector<attack::TimingThresholds> got(kThreads *
                                              kItersPerThread);
    {
        std::vector<std::jthread> pool;
        pool.reserve(kThreads);
        for (unsigned t = 0; t < kThreads; ++t) {
            pool.emplace_back([&cache, &got, key, t] {
                for (unsigned i = 0; i < kItersPerThread; ++i)
                    got[t * kItersPerThread + i] =
                        cache.thresholds(key);
            });
        }
    } // jthreads join here

    // The lock is held across the miss compute, so concurrent lookups
    // of one key can never split into two computes.
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), kThreads * kItersPerThread);
    EXPECT_EQ(cache.size(), 1u);
    for (const auto &th : got)
        expectBitIdentical(reference, th);
}

/** Sweep rows carry the raw threshold bit patterns, so a byte-compare
 *  of the CSVs is a bit-compare of every calibration value. */
void
calibrationScenario(const exp::Scenario &sc, exp::RunContext &ctx)
{
    const auto th = ctx.calibration();
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%016" PRIx64 ":%016" PRIx64 ":%016" PRIx64
                  ":%016" PRIx64 ":%016" PRIx64 ":%016" PRIx64,
                  static_cast<std::uint64_t>(bits(th.localBoundary)),
                  static_cast<std::uint64_t>(bits(th.remoteBoundary)),
                  static_cast<std::uint64_t>(bits(th.localHitCenter)),
                  static_cast<std::uint64_t>(bits(th.localMissCenter)),
                  static_cast<std::uint64_t>(bits(th.remoteHitCenter)),
                  static_cast<std::uint64_t>(bits(th.remoteMissCenter)));
    ctx.row(sc.name, sc.seed, row);
}

std::vector<exp::Scenario>
calibrationScenarios()
{
    const std::string platform = rt::platformNames().front();
    std::vector<exp::Scenario> scenarios;
    // Several scenarios sharing one (platform, seed), plus one odd
    // seed: the shared ones must all hit after the first compute.
    for (int i = 0; i < 4; ++i) {
        exp::Scenario sc;
        sc.name = "calib/rep=" + std::to_string(i);
        sc.setPlatform(platform);
        scenarios.push_back(sc);
    }
    exp::Scenario odd;
    odd.name = "calib/seed=7";
    odd.setPlatform(platform);
    odd.seed = 7;
    odd.system.seed = 7;
    scenarios.push_back(odd);
    return scenarios;
}

TEST(CalibrationCache, SweepBitIdenticalAcrossThreadCounts)
{
    const auto scenarios = calibrationScenarios();

    std::vector<std::vector<std::vector<std::string>>> rows;
    for (unsigned threads : {1u, 2u, 8u}) {
        // Private per-run cache: every thread count starts cold, so
        // hits in the 8-thread run cannot be fresh computes leaking
        // from an earlier run.
        attack::CalibrationCache cache;
        exp::RunnerConfig config;
        config.threads = threads;
        config.progress = false;
        config.calibrationCache = &cache;
        auto report =
            exp::ExperimentRunner(config).run(scenarios,
                                              calibrationScenario);
        EXPECT_EQ(report.failures(), 0u);
        // Two distinct (platform, seed) keys; everything else hits.
        EXPECT_EQ(cache.misses(), 2u);
        EXPECT_EQ(cache.hits(), scenarios.size() - 2);
        rows.push_back(report.allRows());
    }
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], rows[1]);
    EXPECT_EQ(rows[0], rows[2]);
}

TEST(CalibrationCache, RunContextMatchesDirectOracle)
{
    const auto scenarios = calibrationScenarios();
    attack::CalibrationCache cache;
    exp::RunnerConfig config;
    config.threads = 1;
    config.progress = false;
    config.calibrationCache = &cache;
    auto report =
        exp::ExperimentRunner(config).run(scenarios,
                                          calibrationScenario);
    EXPECT_EQ(report.failures(), 0u);

    // Recompute both keys from scratch and re-render the rows: the
    // sweep (cached path) and the direct oracle (fresh path) must
    // agree bit for bit.
    const std::string platform = rt::platformNames().front();
    for (const auto &res : report.results) {
        ASSERT_EQ(res.rows.size(), 1u);
        const std::uint64_t seed = res.name == "calib/seed=7" ? 7 : 2023;
        const auto th = freshThresholds(platform, seed);
        char row[256];
        std::snprintf(row, sizeof(row),
                      "%016" PRIx64 ":%016" PRIx64 ":%016" PRIx64
                      ":%016" PRIx64 ":%016" PRIx64 ":%016" PRIx64,
                      bits(th.localBoundary), bits(th.remoteBoundary),
                      bits(th.localHitCenter), bits(th.localMissCenter),
                      bits(th.remoteHitCenter),
                      bits(th.remoteMissCenter));
        EXPECT_EQ(res.rows[0][2], row) << res.name;
    }
}

} // namespace
} // namespace gpubox
