/**
 * @file
 * Tests for the GPUBOX_CHECKED invariant tier (src/util/check.hh).
 *
 * Positive cases prove the deep audits stay silent on healthy state;
 * negative cases corrupt state through the debug hooks and expect the
 * named fatal. Under a normal build the audits compile to nothing,
 * so every test here skips -- the suite is exercised by the dedicated
 * -DGPUBOX_CHECKED=ON CI job.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mem/address.hh"
#include "mem/page_allocator.hh"
#include "mem/virtual_space.hh"
#include "noc/fabric.hh"
#include "noc/topology.hh"
#include "sim/engine.hh"
#include "sim/task.hh"
#include "util/arena.hh"
#include "util/check.hh"
#include "util/contention.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace gpubox
{
namespace
{

#if !GPUBOX_CHECKED_ENABLED
#define SKIP_UNLESS_CHECKED() \
    GTEST_SKIP() << "build with -DGPUBOX_CHECKED=ON to run this test"
#else
#define SKIP_UNLESS_CHECKED() (void)0
#endif

/** Run @p fn; return the FatalError message (must throw). */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected a FatalError";
    return {};
}

sim::Task
spinActor(sim::ActorCtx &, int steps)
{
    for (int i = 0; i < steps; ++i)
        co_await sim::Delay{10};
}

TEST(CheckedBuild, ReportsCompiledState)
{
    // Informational: ties the ctest log to the build tier.
    RecordProperty("gpubox_checked", kCheckedBuild ? 1 : 0);
    SUCCEED();
}

TEST(CheckedBuild, HealthyEngineAuditIsSilent)
{
    SKIP_UNLESS_CHECKED();
    sim::Engine eng;
    for (int k = 0; k < 5; ++k) {
        eng.spawn("spin" + std::to_string(k),
                  [](sim::ActorCtx &ctx) { return spinActor(ctx, 8); });
    }
    // spawn() and stepOne() already audit in checked builds; a direct
    // call on a half-run engine must also be clean.
    for (int i = 0; i < 7; ++i)
        eng.stepOne();
    eng.auditSchedulerCoherence();
    eng.run();
    eng.auditSchedulerCoherence();
    EXPECT_EQ(eng.liveActors(), 0u);
}

TEST(CheckedBuild, EngineHeapCorruptionIsCaught)
{
#if GPUBOX_CHECKED_ENABLED
    sim::Engine eng;
    for (int k = 0; k < 4; ++k) {
        eng.spawn("spin" + std::to_string(k),
                  [](sim::ActorCtx &ctx) { return spinActor(ctx, 50); });
    }
    for (int i = 0; i < 9; ++i)
        eng.stepOne();
    eng.debugCorruptHeapForAudit();
    const std::string msg =
        fatalMessage([&] { eng.auditSchedulerCoherence(); });
    EXPECT_NE(msg.find("GPUBOX_INVARIANT"), std::string::npos) << msg;
    EXPECT_NE(msg.find("engine scheduler"), std::string::npos) << msg;
#else
    SKIP_UNLESS_CHECKED();
#endif
}

TEST(CheckedBuild, RouteTableCorruptionIsCaught)
{
#if GPUBOX_CHECKED_ENABLED
    const noc::Topology t = noc::Topology::dgx1();
    noc::LinkParams p;
    p.hopCycles = 100;
    noc::Fabric fabric(t, p); // constructor audit must pass
    fabric.debugCorruptRouteForAudit();
    const std::string msg =
        fatalMessage([&] { fabric.auditRouteTables(); });
    EXPECT_NE(msg.find("GPUBOX_INVARIANT"), std::string::npos) << msg;
    EXPECT_NE(msg.find("route"), std::string::npos) << msg;
#else
    SKIP_UNLESS_CHECKED();
#endif
}

TEST(CheckedBuild, PortConservationHoldsAfterTraffic)
{
    SKIP_UNLESS_CHECKED();
    const noc::Topology t = noc::Topology::crossbar("xbar", 8, 3);
    noc::LinkParams p;
    p.hopCycles = 100;
    noc::Fabric fabric(t, p);
    for (int i = 0; i < 32; ++i)
        fabric.traverse(i % 8, (i + 1 + i / 8) % 8, i * 10);
    fabric.auditPortConservation();
    fabric.resetStats(); // audits again on entry in checked builds
    fabric.auditPortConservation();
}

TEST(CheckedBuild, ArenaIndexOutOfBoundsIsCaught)
{
    SKIP_UNLESS_CHECKED();
    Arena<int, 4> arena;
    arena.emplace(11);
    arena.emplace(22);
    EXPECT_EQ(arena[1], 22);
    const std::string msg = fatalMessage([&] { (void)arena[2]; });
    EXPECT_NE(msg.find("GPUBOX_ASSERT"), std::string::npos) << msg;
    EXPECT_NE(msg.find("out of bounds"), std::string::npos) << msg;
}

TEST(CheckedBuild, ContentionMeterStaysMonotonic)
{
    SKIP_UNLESS_CHECKED();
    ContentionMeter meter(100, 2, 50);
    // Mixed-skew arrivals: in-window, behind-window and advancing
    // records all keep the window-end bookkeeping coherent.
    (void)meter.record(10);
    (void)meter.record(250);
    (void)meter.record(30); // behind the advanced window: clamped
    (void)meter.record(990);
    meter.reset();
    (void)meter.record(5);
}

TEST(CheckedBuild, TlbCoherenceAuditIsSilent)
{
    SKIP_UNLESS_CHECKED();
    mem::AddressCodec codec(4096);
    mem::PageAllocator alloc(64, Rng(7));
    mem::VirtualSpace space(codec);
    const VAddr a = space.allocate(4 * 4096, 1, alloc);
    const VAddr b = space.allocate(2 * 4096, 1, alloc);
    // Second translate of each page takes the memoized path, which in
    // checked builds re-probes the page map and cross-checks.
    for (int pass = 0; pass < 3; ++pass) {
        for (int i = 0; i < 4; ++i)
            (void)space.translate(a + i * 4096 + 16);
        (void)space.translate(b + 4096);
    }
    // Release flushes the memo; the survivor must still translate.
    space.release(a, alloc);
    (void)space.translate(b + 8);
}

TEST(CheckedBuild, DisabledMacrosNeverEvaluate)
{
    // Compiled in BOTH tiers: under a normal build the condition and
    // message arguments must not be evaluated (they are type-checked
    // dead code); under a checked build the passing condition means
    // the side effect runs exactly once.
    int evaluations = 0;
    auto touch = [&evaluations] {
        ++evaluations;
        return true;
    };
    GPUBOX_ASSERT(touch(), "never fires; argument count ", evaluations);
    EXPECT_EQ(evaluations, kCheckedBuild ? 1 : 0);
}

} // namespace
} // namespace gpubox
