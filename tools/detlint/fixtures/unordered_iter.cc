// detlint fixture: unordered-iter rule. Never compiled, only scanned.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, int> table;
std::unordered_set<long> seen = {};

void
positives()
{
    for (auto &kv : table) {              // EXPECT: unordered-iter
        (void)kv;
    }
    auto it = table.begin();              // EXPECT: unordered-iter
    auto cit = seen.cbegin();             // EXPECT: unordered-iter
    (void)it; (void)cit;
}

void
negatives()
{
    // Keyed probes never observe hash order; comparing a probe
    // result against end() is keyed access, not iteration.
    auto hit = table.find(3);
    (void)(hit == table.end());
    (void)table.count(4);
    table.erase(5);
    (void)seen.contains(6);
}

void
suppressed()
{
    // detlint: allow(unordered-iter) -- fixture: order folded through a commutative reduction
    for (auto &kv : table) {
        (void)kv;
    }
    auto it = seen.begin(); // detlint: allow(unordered-iter) -- fixture: same-line suppression
    (void)it;
}
