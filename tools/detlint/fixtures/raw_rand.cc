// detlint fixture: raw-rand rule. Never compiled, only scanned.
#include <cstdlib>
#include <random>

void
positives()
{
    int a = std::rand();                 // EXPECT: raw-rand
    std::srand(42);                      // EXPECT: raw-rand
    std::random_device rd;               // EXPECT: raw-rand
    std::mt19937 gen32(1);               // EXPECT: raw-rand
    std::mt19937_64 gen64(1);            // EXPECT: raw-rand
    std::default_random_engine eng(1);   // EXPECT: raw-rand
    (void)a; (void)rd; (void)gen32; (void)gen64; (void)eng;
}

int strand(int);
int operand(int);

void
negatives()
{
    // Identifiers merely containing "rand" are fine.
    int a = strand(1);
    int b = operand(2);
    (void)a; (void)b;
}

void
suppressed()
{
    // detlint: allow(raw-rand) -- fixture: justified suppression on next line
    int a = std::rand();
    std::srand(7); // detlint: allow(raw-rand) -- fixture: same-line suppression
    (void)a;
}
