// detlint fixture: pointer-key rule. Never compiled, only scanned.
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

struct Node;
struct Widget;

std::map<Node *, int> owners;                      // EXPECT: pointer-key
std::set<const Widget *> live;                     // EXPECT: pointer-key
std::unordered_map<Node *, long> slots;            // EXPECT: pointer-key
std::hash<Widget *> widgetHash;                    // EXPECT: pointer-key

// Pointer VALUES are fine; only pointer KEYS order a container.
std::map<int, Node *> byId;
std::map<long, const Widget *> byTag;

void
suppressed()
{
    // detlint: allow(pointer-key) -- fixture: container is scratch, never iterated or output
    static std::map<Node *, int> scratch;
    (void)scratch;
}
