// detlint fixture: addr-leak rule. Never compiled, only scanned.
#include <cstdio>
#include <iostream>

struct Probe
{
    void
    dump(std::ostream &os) const
    {
        os << this;                        // EXPECT: addr-leak
    }
    int field = 0;
};

void
positives(Probe &p)
{
    std::cout << &p;                       // EXPECT: addr-leak
    std::printf("probe at %p\n", (void *)&p); // EXPECT: addr-leak
}

void
negatives(Probe &p, int x)
{
    // Values (not addresses) and percent signs that are not %p.
    std::cout << p.field << (x << 2);
    std::printf("utilisation %d%%, %profit\n", x);
}

void
suppressed(Probe &p)
{
    // detlint: allow(addr-leak) -- fixture: debug-only dump behind a flag, never in CSV
    std::cout << &p;
}
