// detlint fixture: fatal-style rule. Never compiled, only scanned.
#include <string>

namespace gpubox
{
template <typename... Args> [[noreturn]] void fatal(const Args &...);
}
using gpubox::fatal;

void
positives(int id, const std::string &kind)
{
    fatal(kind, " failed");               // EXPECT: fatal-style
    fatal("bad thing happened.");         // EXPECT: fatal-style
    fatal(" leading whitespace");         // EXPECT: fatal-style
    fatal("ends with a newline\n");       // EXPECT: fatal-style
    (void)id;
}

void
negatives(int id, int got, int want)
{
    fatal("device ", id, " missing");
    fatal("expected ", want, " lanes, got ", got);
    fatal("a long context message that wraps: "
          "the concatenated tail carries no terminal period");
}

void
suppressed(const std::string &msg)
{
    fatal(msg); // detlint: allow(fatal-style) -- fixture: message assembled by the caller
}
