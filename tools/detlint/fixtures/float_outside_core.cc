// detlint fixture: float accumulation OUTSIDE src/sim, src/noc and
// src/cache is not policed (reporting/statistics code converts at
// the edge by design). This file expects zero findings.

void
reportingEdge(const long long *sums, int n)
{
    double grand = 0;
    for (int i = 0; i < n; ++i)
        grand += double(sums[i]);
    (void)grand;
}
