// Fixture for the raw-thread rule: spawning std::thread/std::jthread
// outside the sanctioned worker pools. Never compiled.

#include <thread>
#include <vector>

void
positives()
{
    std::thread t([] {});                       // EXPECT: raw-thread
    std::jthread j([] {});                      // EXPECT: raw-thread
    std::vector<std::jthread> pool;             // EXPECT: raw-thread
    std :: thread spaced([] {});                // EXPECT: raw-thread
    t.join();
}

unsigned
negatives()
{
    // Static capacity probe, not a spawn.
    unsigned hw = std::thread::hardware_concurrency();
    // Unqualified identifiers and comments mentioning std::thread
    // never fire; neither does the thread_local keyword.
    thread_local int counter = 0;
    return hw + static_cast<unsigned>(counter);
}

void
suppressed()
{
    // detlint: allow(raw-thread) -- fixture: justified one-off helper
    std::thread t([] {});
    t.join();
}
