// detlint fixture: wall-clock rule. Never compiled, only scanned;
// the EXPECT annotations mark the findings --self-test requires.
#include <chrono>
#include <ctime>

void
positives()
{
    auto a = std::chrono::steady_clock::now();          // EXPECT: wall-clock
    auto b = std::chrono::system_clock::now();          // EXPECT: wall-clock
    auto c = std::chrono::high_resolution_clock::now(); // EXPECT: wall-clock
    auto d = std::time(nullptr);                        // EXPECT: wall-clock
    auto e = time(nullptr);                             // EXPECT: wall-clock
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);                // EXPECT: wall-clock
    (void)a; (void)b; (void)c; (void)d; (void)e;
}

struct Stamp; // has a member `long time() const`

void
negatives(Stamp &s, Stamp *p)
{
    // Member calls and identifiers merely containing "time" are fine.
    long t = s.time();
    long u = p->time();
    long runtime(int);
    long sim_time(int);
    // Mentioning steady_clock in a comment is fine.
    (void)t; (void)u;
}

void
suppressed()
{
    // detlint: allow(wall-clock) -- fixture: justified suppression on next line
    auto t = std::chrono::steady_clock::now();
    auto u = std::time(nullptr); // detlint: allow(wall-clock) -- fixture: same-line suppression
    (void)t; (void)u;
}
