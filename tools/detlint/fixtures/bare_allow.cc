// detlint fixture: bare-allow rule. Never compiled, only scanned.
// A suppression with no `-- why` text still suppresses its target,
// but is itself reported so every allow() carries a justification.
#include <chrono>
#include <cstdlib>

void
bare()
{
    // detlint: allow(wall-clock)                      // EXPECT: bare-allow
    auto t = std::chrono::steady_clock::now();
    int r = std::rand(); // detlint: allow(raw-rand)   // EXPECT: bare-allow
    (void)t; (void)r;
}

void
justified()
{
    // detlint: allow(wall-clock,raw-rand) -- fixture: one comment may name several rules
    auto t = std::chrono::steady_clock::now().time_since_epoch().count() +
             std::rand(); // detlint: allow(wall-clock,raw-rand) -- fixture: spans both rules
    (void)t;
}
