// detlint fixture: thread-sleep rule. Never compiled, only scanned.
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

std::condition_variable cv;
std::mutex m;
struct FakeDeadline {}; // stands in for a clock::time_point

void
positives(FakeDeadline later)
{
    using namespace std::chrono_literals;
    std::this_thread::sleep_for(1ms);        // EXPECT: thread-sleep
    std::this_thread::sleep_until(later);    // EXPECT: thread-sleep
    std::unique_lock<std::mutex> lk(m);
    cv.wait_for(lk, 10ms);                   // EXPECT: thread-sleep
    cv.wait_until(lk, later);                // EXPECT: thread-sleep
    usleep(100);                             // EXPECT: thread-sleep
}

void
negatives()
{
    // Untimed waits block on a condition, not on wall time.
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [] { return true; });
    cv.notify_all();
}

void
suppressed()
{
    // detlint: allow(thread-sleep) -- fixture: test harness backoff, not simulated time
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
