// detlint fixture: float-accum rule. Never compiled, only scanned.
// Lives under a sim/ directory because the rule only polices the
// cycle-accurate core (src/sim, src/noc, src/cache).

void
positives(const int *samples, int n)
{
    double acc = 0;
    float total = 0;
    for (int i = 0; i < n; ++i) {
        acc += samples[i];                 // EXPECT: float-accum
        total -= samples[i] * 0.5f;       // EXPECT: float-accum
    }
    (void)acc; (void)total;
}

void
negatives(const int *samples, int n)
{
    // Integer accumulation is associative; convert at the edge.
    long long sum = 0;
    for (int i = 0; i < n; ++i)
        sum += samples[i];
    double mean = double(sum) / n;
    double scaled = mean * 2.0; // assignment, not accumulation
    (void)scaled;
}

void
suppressed(const int *samples, int n)
{
    double acc = 0;
    for (int i = 0; i < n; ++i) {
        acc += samples[i]; // detlint: allow(float-accum) -- fixture: reporting edge, order fixed by index loop
    }
    (void)acc;
}
