#!/usr/bin/env python3
"""detlint -- determinism & concurrency static checks for gpubox.

The repo's load-bearing contract is byte-identical stdout/CSV/metrics
for any --threads N on every platform.  This linter statically bans
the classic ways that contract dies: wall-clock values leaking into
outputs, randomness outside the seeded util::Rng, iteration over
hash-ordered containers, address-keyed hashing (ASLR order), floating
accumulation in the integer-cycle simulator core, and sloppy fatal()
diagnostics that make CI diffs unreadable.  tools/detlint/RULES.md is
the reference; every rule id below matches a section there.

Usage:
  detlint.py [--root DIR] [--json] [--list-rules] [PATH...]
  detlint.py --self-test

PATHs (default: src) are files or directories scanned for *.cc, *.hh
and *.cpp.  Exit status: 0 clean, 1 findings, 2 usage/internal error.

Suppressions: a finding is silenced by an inline comment

    // detlint: allow(rule-id) -- why this use is legitimate
    // detlint: allow(rule-a,rule-b) -- one comment may name several

on the offending line, or on its own line immediately above.  The
justification text after `--` is mandatory: a bare allow() is itself
reported (rule `bare-allow`), so every suppression explains itself.
"""

import argparse
import json
import os
import re
import sys

SCAN_EXTENSIONS = (".cc", ".hh", ".cpp")

# Per-rule path allowlist (relative, '/'-separated). Deliberately
# tiny: util/log.hh *defines* fatal(), so the style rule cannot apply
# to it, and the two deterministic worker pools (the ExperimentRunner
# scenario fan-out and the ShardedEngine conduction pool) are the
# sanctioned raw-thread sites every other thread use must go through.
# Everything else must use an inline, justified suppression.
ALLOWLIST = {
    "fatal-style": ("src/util/log.hh",),
    "raw-thread": ("src/exp/experiment_runner.cc",
                   "src/sim/sharded_engine.hh",
                   "src/sim/sharded_engine.cc"),
}

# float-accum only polices the integer-cycle simulator core.
FLOAT_ACCUM_DIRS = re.compile(r"(^|/)(sim|noc|cache)/")

SUPPRESS_RE = re.compile(
    r"//\s*detlint:\s*allow\(\s*([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\s*\)"
    r"(?:\s*--\s*(\S.*))?")

RULES = {
    "wall-clock": "wall-clock time source outside the documented "
                  "wall_seconds plumbing (simulated Cycles only)",
    "raw-rand": "randomness outside the seeded util::Rng stream",
    "unordered-iter": "iteration over a hash-ordered container "
                      "(visit order is unspecified and can leak into "
                      "output)",
    "pointer-key": "pointer-keyed map/set/hash (ASLR makes the order "
                   "and hashing nondeterministic across runs)",
    "float-accum": "float/double accumulation in the integer-cycle "
                   "simulator core (src/sim, src/noc, src/cache)",
    "fatal-style": "fatal() must lead with a string-literal context "
                   "message, not end in '.' or a newline",
    "addr-leak": "raw pointer value formatted into output (ASLR "
                 "leaks into logs/CSV)",
    "thread-sleep": "wall-clock sleeps/timed waits (simulated time "
                    "never needs them; they race the scheduler)",
    "raw-thread": "std::thread/std::jthread outside the sanctioned "
                  "deterministic worker pools (exp runner, sharded "
                  "engine)",
    "bare-allow": "detlint suppression without a justification "
                  "comment ('-- why')",
}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def as_dict(self):
        return {"file": self.path, "line": self.line,
                "rule": self.rule, "message": self.message}


def strip_code(text):
    """Return (code_lines, literal_lines): per-line views with
    comments+string/char literals blanked out of `code`, and with
    everything *except* string-literal contents blanked out of
    `literals`.  Line count and column positions are preserved."""
    code = []
    lits = []
    in_block = False
    for raw in text.split("\n"):
        code_line = []
        lit_line = []
        i = 0
        n = len(raw)
        state = "block" if in_block else "code"
        while i < n:
            c = raw[i]
            if state == "code":
                if c == "/" and i + 1 < n and raw[i + 1] == "/":
                    code_line.append(" " * (n - i))
                    lit_line.append(" " * (n - i))
                    i = n
                elif c == "/" and i + 1 < n and raw[i + 1] == "*":
                    state = "block"
                    code_line.append("  ")
                    lit_line.append("  ")
                    i += 2
                elif c == '"':
                    state = "dq"
                    code_line.append('"')
                    lit_line.append(" ")
                    i += 1
                elif c == "'":
                    state = "sq"
                    code_line.append("'")
                    lit_line.append(" ")
                    i += 1
                else:
                    code_line.append(c)
                    lit_line.append(" ")
                    i += 1
            elif state == "block":
                if c == "*" and i + 1 < n and raw[i + 1] == "/":
                    state = "code"
                    code_line.append("  ")
                    lit_line.append("  ")
                    i += 2
                else:
                    code_line.append(" ")
                    lit_line.append(" ")
                    i += 1
            elif state in ("dq", "sq"):
                quote = '"' if state == "dq" else "'"
                if c == "\\" and i + 1 < n:
                    code_line.append("  ")
                    lit_line.append(raw[i:i + 2] if state == "dq"
                                    else "  ")
                    i += 2
                elif c == quote:
                    state = "code"
                    code_line.append(quote)
                    lit_line.append(" ")
                    i += 1
                else:
                    code_line.append(" ")
                    lit_line.append(c if state == "dq" else " ")
                    i += 1
        in_block = state == "block"
        code.append("".join(code_line))
        lits.append("".join(lit_line))
    return code, lits


def parse_suppressions(raw_lines):
    """Map line number (1-based) -> set of allowed rules, plus the
    suppression records and any bare-allow findings."""
    allowed = {}
    records = []
    bare = []
    for idx, raw in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(raw)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        justification = m.group(2)
        if not justification:
            bare.append((idx, rules))
        # A comment-only line covers the next line; a trailing
        # comment covers its own line.
        before = raw[:m.start()].strip()
        target = idx if before else idx + 1
        allowed.setdefault(target, set()).update(rules)
        records.append({"line": idx, "rules": sorted(rules),
                        "justification": justification or ""})
    return allowed, records, bare


WALL_CLOCK_RE = re.compile(
    r"\bsystem_clock\b|\bsteady_clock\b|\bhigh_resolution_clock\b"
    r"|\bclock_gettime\b|\bgettimeofday\b|(?<![\w.>])time\s*\(")
RAW_RAND_RE = re.compile(
    r"(?<![\w.>])rand\s*\(|(?<![\w.>])srand\s*\(|\brandom_device\b"
    r"|\bmt19937(?:_64)?\b|\bdefault_random_engine\b"
    r"|\bminstd_rand0?\b")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;()]*?>\s+"
    r"(\w+)\s*[;{=]")
POINTER_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|set|multimap|multiset)\s*<\s*"
    r"(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*[\s\w]*[,>]"
    r"|\bstd::hash\s*<[^>]*\*")
FLOAT_DECL_RE = re.compile(r"\b(?:float|double)\s+(\w+)\s*(?:=|;|\{)")
ADDR_LEAK_CODE_RE = re.compile(r"<<\s*&[A-Za-z_]|<<\s*\bthis\b")
ADDR_LEAK_LIT_RE = re.compile(r"%p\b")
THREAD_SLEEP_RE = re.compile(
    r"\bsleep_for\b|\bsleep_until\b|(?<![\w.>])usleep\s*\("
    r"|\bnanosleep\b|\bwait_for\b|\bwait_until\b")
# The type itself, not static queries: std::thread::hardware_
# concurrency() is a capacity probe, not a spawn.
RAW_THREAD_RE = re.compile(r"\bstd\s*::\s*j?thread\b(?!\s*::)")
FATAL_CALL_RE = re.compile(r"(?<![\w:])fatal\s*\(")


def check_fatal_style(path, raw_text, code_text, findings):
    """fatal() calls must lead with a string-literal context message;
    the message must not end with '.' or an escaped newline."""
    for m in FATAL_CALL_RE.finditer(code_text):
        open_paren = code_text.index("(", m.start())
        line_no = raw_text.count("\n", 0, m.start()) + 1
        # Walk the code view to the matching close paren.
        depth = 0
        end = None
        for i in range(open_paren, len(code_text)):
            if code_text[i] == "(":
                depth += 1
            elif code_text[i] == ")":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end is None:
            continue  # unbalanced (macro soup); not our problem
        # Skip the declaration/definition of fatal itself and any
        # mention in comments (the code view already blanked those,
        # so a blanked region yields no '(' match -- but a fatal(
        # in a declarator has a type name first).
        args_raw = raw_text[open_paren + 1:end]
        args_code = code_text[open_paren + 1:end]
        stripped = args_raw.lstrip()
        if not args_raw.strip():
            continue  # fatal() with no args: not the logging helper
        if re.match(r"(?:const\s|[A-Z]\w*\s*&|void\b)", stripped):
            continue  # parameter list, not a call
        if not stripped.startswith('"'):
            findings.append(Finding(
                path, line_no, "fatal-style",
                "fatal() must start with a string-literal context "
                "message (got '" + stripped.split("\n")[0][:40] +
                "...')"))
            continue
        first_lit = re.match(r'"((?:[^"\\]|\\.)*)"', stripped)
        if first_lit and first_lit.group(1):
            if first_lit.group(1)[0].isspace():
                findings.append(Finding(
                    path, line_no, "fatal-style",
                    "fatal() message starts with whitespace"))
        elif first_lit:
            findings.append(Finding(
                path, line_no, "fatal-style",
                "fatal() message starts with an empty literal"))
        # The last string literal before the close paren is the tail
        # of the message.
        tail = None
        for lit in re.finditer(r'"((?:[^"\\]|\\.)*)"', args_raw):
            # Only literals that the code view also sees as literals
            # (i.e. not inside a nested comment).
            if args_code[lit.start()] == '"':
                tail = lit
        if tail is not None and tail.end() == len(args_raw.rstrip()):
            text = tail.group(1)
            if text.endswith(".") and not text.endswith(".."):
                findings.append(Finding(
                    path, line_no, "fatal-style",
                    "fatal() message ends with '.' (messages are "
                    "embedded in larger diagnostics)"))
            if text.endswith("\\n"):
                findings.append(Finding(
                    path, line_no, "fatal-style",
                    "fatal() message ends with a newline"))


def scan_file(path, rel, text):
    raw_lines = text.split("\n")
    code_lines, lit_lines = strip_code(text)
    allowed, records, bare = parse_suppressions(raw_lines)
    findings = []

    for line_no, rules in bare:
        findings.append(Finding(
            rel, line_no, "bare-allow",
            "suppression lacks a justification: write "
            "`// detlint: allow(rule) -- why`"))

    line_rules = [
        ("wall-clock", WALL_CLOCK_RE,
         "wall-clock time source (use simulated Cycles; the "
         "wall_seconds plumbing must be suppressed explicitly)"),
        ("raw-rand", RAW_RAND_RE,
         "raw randomness (route it through util::Rng so the seed "
         "reproduces it)"),
        ("pointer-key", POINTER_KEY_RE,
         "pointer-keyed associative container or hash"),
        ("addr-leak", ADDR_LEAK_CODE_RE,
         "raw pointer value streamed into output"),
        ("thread-sleep", THREAD_SLEEP_RE,
         "wall-clock sleep or timed wait"),
        ("raw-thread", RAW_THREAD_RE,
         "raw std::thread/std::jthread (route concurrency through "
         "the ExperimentRunner pool or sim::ShardedEngine shards)"),
    ]
    for idx, code in enumerate(code_lines, start=1):
        for rule, regex, msg in line_rules:
            if rel in ALLOWLIST.get(rule, ()):
                continue
            if regex.search(code) and rule not in allowed.get(idx,
                                                             set()):
                findings.append(Finding(rel, idx, rule, msg))
        if ADDR_LEAK_LIT_RE.search(lit_lines[idx - 1]) and \
                "addr-leak" not in allowed.get(idx, set()):
            findings.append(Finding(
                rel, idx, "addr-leak",
                "%p formats a raw pointer into output"))

    # unordered-iter: collect hash-container names, then flag
    # range-for or begin()/end() iteration over them.
    code_text = "\n".join(code_lines)
    unordered_names = set(UNORDERED_DECL_RE.findall(code_text))
    if unordered_names:
        names = "|".join(re.escape(n) for n in sorted(unordered_names))
        # Only begin()/range-for start an iteration; the ubiquitous
        # `it == m.end()` probe-result check is keyed access, and
        # unordered containers have no reverse iterators at all.
        iter_re = re.compile(
            r"for\s*\([^;)]*:\s*(?:" + names + r")\b"
            r"|\b(?:" + names + r")\s*\.\s*c?begin\s*\(")
        for idx, code in enumerate(code_lines, start=1):
            if iter_re.search(code) and \
                    "unordered-iter" not in allowed.get(idx, set()):
                findings.append(Finding(
                    rel, idx, "unordered-iter",
                    "iteration over a hash-ordered container "
                    "(order is unspecified; use an ordered container "
                    "or sort first)"))

    # float-accum: only inside the integer-cycle simulator core.
    if FLOAT_ACCUM_DIRS.search(rel.replace(os.sep, "/")):
        float_names = set(FLOAT_DECL_RE.findall(code_text))
        if float_names:
            names = "|".join(re.escape(n) for n in sorted(float_names))
            accum_re = re.compile(r"\b(?:" + names + r")\s*[+\-]=")
            for idx, code in enumerate(code_lines, start=1):
                if accum_re.search(code) and \
                        "float-accum" not in allowed.get(idx, set()):
                    findings.append(Finding(
                        rel, idx, "float-accum",
                        "floating accumulation in the cycle-accurate "
                        "core (ordering-sensitive; accumulate in "
                        "integers and convert at the edge)"))

    if rel not in ALLOWLIST.get("fatal-style", ()):
        style = []
        check_fatal_style(rel, text, code_text, style)
        for f in style:
            if "fatal-style" not in allowed.get(f.line, set()):
                findings.append(f)

    return findings, records


def collect_files(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            files.append(full)
        elif os.path.isdir(full):
            for dirpath, _, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith(SCAN_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"detlint: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def run_scan(root, paths):
    all_findings = []
    all_suppressions = []
    files = collect_files(root, paths)
    for full in files:
        rel = os.path.relpath(full, root).replace(os.sep, "/")
        with open(full, encoding="utf-8") as fh:
            text = fh.read()
        findings, records = scan_file(full, rel, text)
        all_findings.extend(findings)
        for r in records:
            r["file"] = rel
        all_suppressions.extend(records)
    return files, all_findings, all_suppressions


def self_test(root):
    """Every fixture under tools/detlint/fixtures/ carries
    `// EXPECT: rule` annotations; the scan must produce exactly
    those findings, and justified suppressions must silence theirs."""
    fixdir = os.path.join(root, "tools", "detlint", "fixtures")
    if not os.path.isdir(fixdir):
        print("detlint --self-test: missing fixtures dir", fixdir,
              file=sys.stderr)
        return 2
    failures = 0
    fixtures = 0
    for dirpath, _, names in os.walk(fixdir):
        for name in sorted(names):
            if not name.endswith(SCAN_EXTENSIONS):
                continue
            fixtures += 1
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, fixdir).replace(os.sep, "/")
            with open(full, encoding="utf-8") as fh:
                text = fh.read()
            expected = set()
            for idx, raw in enumerate(text.split("\n"), start=1):
                for m in re.finditer(r"//\s*EXPECT:\s*([a-z\-]+)",
                                     raw):
                    expected.add((idx, m.group(1)))
            findings, _ = scan_file(full, rel, text)
            got = {(f.line, f.rule) for f in findings}
            if got != expected:
                failures += 1
                print(f"FAIL {rel}:", file=sys.stderr)
                for line, rule in sorted(expected - got):
                    print(f"  missing finding {rule} at line {line}",
                          file=sys.stderr)
                for line, rule in sorted(got - expected):
                    print(f"  unexpected finding {rule} at line "
                          f"{line}", file=sys.stderr)
    if fixtures == 0:
        print("detlint --self-test: no fixtures found", file=sys.stderr)
        return 2
    print(f"detlint self-test: {fixtures} fixtures, "
          f"{failures} failures")
    return 1 if failures else 0


def main(argv):
    ap = argparse.ArgumentParser(prog="detlint", add_help=True)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
    ap.add_argument("--json", action="store_true",
                    help="machine-readable findings summary on stdout")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("paths", nargs="*", default=None)
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule:16s} {RULES[rule]}")
        return 0
    if args.self_test:
        return self_test(args.root)

    paths = args.paths or ["src"]
    files, findings, suppressions = run_scan(args.root, paths)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if args.json:
        print(json.dumps({
            "schema": "detlint-findings/v1",
            "root": args.root,
            "files_scanned": len(files),
            "findings": [f.as_dict() for f in findings],
            "suppressions": suppressions,
        }, indent=2))
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        print(f"detlint: {len(files)} files, {len(findings)} "
              f"finding(s), {len(suppressions)} suppression(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
